/**
 * @file
 * Integration tests across modules: the harness runner, the paper's
 * metric formulas, baseline caching, multi-level prefetching and
 * end-to-end behavioural properties of whole simulations (who should win
 * on which pattern class, monotonicity in machine parameters).
 */
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "harness/perf.hpp"
#include "harness/sweep.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::harness {
namespace {

ExperimentSpec
quickSpec(const std::string& workload, const std::string& pf)
{
    return Experiment(workload).l2(pf).warmup(30'000).measure(80'000)
        .build();
}

// ------------------------------------------------------------------- metrics

TEST(Metrics, FormulasMatchArtifactAppendix)
{
    sim::RunResult base, with;
    base.ipc_geomean = 1.0;
    base.llc_demand_load_misses = 1000;
    base.llc_read_misses = 1000;
    with.ipc_geomean = 1.2;
    with.llc_demand_load_misses = 300;
    with.llc_read_misses = 1400;
    with.prefetch_issued = 800;
    with.prefetch_useful = 600;

    const Metrics m = computeMetrics(with, base);
    EXPECT_NEAR(m.speedup, 1.2, 1e-12);
    EXPECT_NEAR(m.coverage, 0.7, 1e-12);       // (1000-300)/1000
    EXPECT_NEAR(m.overprediction, 0.4, 1e-12); // (1400-1000)/1000
    EXPECT_NEAR(m.accuracy, 0.75, 1e-12);
}

TEST(Metrics, NegativeOverpredictionClampsToZero)
{
    sim::RunResult base, with;
    base.ipc_geomean = 1.0;
    base.llc_read_misses = 1000;
    with.ipc_geomean = 1.0;
    with.llc_read_misses = 900;
    EXPECT_DOUBLE_EQ(computeMetrics(with, base).overprediction, 0.0);
}

TEST(Metrics, AccuracyDefaultsToOneWithoutPrefetches)
{
    sim::RunResult r;
    EXPECT_DOUBLE_EQ(r.accuracy(), 1.0);
}

// ---------------------------------------------------------------------- perf

TEST(Perf, PercentileSortedNearestRank)
{
    // Nearest-rank definition: smallest element whose rank covers
    // p percent of the sample count. serve_client's p50/p95/p99
    // latency block sorts once and calls this on the shared vector.
    const std::vector<double> ten = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 0), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 10), 1.0);  // ceil(1.0)=1
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 50), 5.0);  // ceil(5.0)=5
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 51), 6.0);  // ceil(5.1)=6
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 95), 10.0); // ceil(9.5)=10
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 99), 10.0);
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 100), 10.0);

    EXPECT_DOUBLE_EQ(percentileSorted({}, 50), 0.0);
    EXPECT_DOUBLE_EQ(percentileSorted({42.0}, 0), 42.0);
    EXPECT_DOUBLE_EQ(percentileSorted({42.0}, 100), 42.0);
    // Out-of-range p clamps instead of indexing out of bounds.
    EXPECT_DOUBLE_EQ(percentileSorted(ten, -5), 1.0);
    EXPECT_DOUBLE_EQ(percentileSorted(ten, 250), 10.0);

    // percentile() (the sorting wrapper) agrees on unsorted input.
    EXPECT_DOUBLE_EQ(percentile({9, 1, 5, 3, 7}, 50), 5.0);
}

// -------------------------------------------------------------------- runner

TEST(Runner, RegistryKnowsAllHarnessNames)
{
    for (const auto& name : harnessPrefetcherNames()) {
        auto pf = sim::makePrefetcher(name);
        ASSERT_NE(pf, nullptr) << name;
    }
    EXPECT_EQ(sim::makePrefetcher("none"), nullptr);
}

TEST(Runner, PythiaCustomRequiresConfig)
{
    // "pythia_custom" is the one spec the registry cannot build: it
    // needs an explicit config object, attached via the builder.
    ExperimentSpec spec = quickSpec("470.lbm-164B", "pythia_custom");
    spec.warmup_instrs = 1'000;
    spec.sim_instrs = 2'000;
    EXPECT_THROW(simulate(spec), std::invalid_argument);

    const auto res = Experiment("470.lbm-164B")
                         .l2Pythia(rl::PythiaConfig{})
                         .warmup(1'000)
                         .measure(2'000)
                         .simulate();
    EXPECT_GT(res.ipc_geomean, 0.0);
}

TEST(Runner, BaselineCachedAcrossEvaluations)
{
    Runner runner;
    (void)runner.evaluate(quickSpec("470.lbm-164B", "stride"));
    EXPECT_EQ(runner.baselinesComputed(), 1u);
    (void)runner.evaluate(quickSpec("470.lbm-164B", "streamer"));
    EXPECT_EQ(runner.baselinesComputed(), 1u); // same machine+workload
    (void)runner.evaluate(quickSpec("462.libquantum-1343B", "stride"));
    EXPECT_EQ(runner.baselinesComputed(), 2u);
}

TEST(Runner, BaselineKeyCoversEveryBaselineAffectingField)
{
    const ExperimentSpec base = quickSpec("470.lbm-164B", "stride");
    auto changesKey = [&base](auto mutate) {
        ExperimentSpec s = base;
        mutate(s);
        return Runner::baselineKey(s) != Runner::baselineKey(base);
    };
    // Each of these changes the no-prefetching run, so it must split
    // the cache (a shared entry would silently skew every metric).
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) {
        s.workload = "429.mcf-184B";
    }));
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) {
        s.workload_seed = 7;
    }));
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) { s.mtps = 1200; }));
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) { s.num_cores = 2; }));
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) {
        s.llc_bytes_per_core *= 2;
    }));
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) {
        s.warmup_instrs += 1;
    }));
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) {
        s.sim_instrs += 1;
    }));
    EXPECT_TRUE(changesKey([](ExperimentSpec& s) {
        s.mix = {"470.lbm-164B"};
    }));
    // The prefetcher fields do not affect the baseline (it resets
    // them), so they must NOT split the cache.
    EXPECT_FALSE(changesKey([](ExperimentSpec& s) {
        s.prefetcher = "spp";
        s.l1_prefetcher = "stride";
        s.pythia_cfg = rl::PythiaConfig{};
    }));
}

TEST(Runner, BaselineKeyCanonicalizesWorkloadIgnoredByMix)
{
    // With a mix set, workloadsFor() ignores the workload name; the key
    // must too, or equal machines would compute duplicate baselines.
    ExperimentSpec a = quickSpec("470.lbm-164B", "stride");
    ExperimentSpec b = quickSpec("429.mcf-184B", "stride");
    a.num_cores = b.num_cores = 2;
    a.mix = b.mix = {"470.lbm-164B", "429.mcf-184B"};
    EXPECT_EQ(Runner::baselineKey(a), Runner::baselineKey(b));
}

TEST(Runner, BaselineKeyMixEncodingIsUnambiguous)
{
    // A single-entry mix must not collide with the same string as a
    // plain workload, and joined mix entries must not collide with a
    // differently-split mix of the same concatenation.
    ExperimentSpec workload = quickSpec("470.lbm-164B", "none");
    ExperimentSpec mix1 = quickSpec("x", "none");
    mix1.mix = {"470.lbm-164B"};
    EXPECT_NE(Runner::baselineKey(workload), Runner::baselineKey(mix1));

    ExperimentSpec two = quickSpec("x", "none");
    two.num_cores = 2;
    two.mix = {"a", "b,c"};
    ExperimentSpec other = quickSpec("x", "none");
    other.num_cores = 2;
    other.mix = {"a,b", "c"};
    EXPECT_NE(Runner::baselineKey(two), Runner::baselineKey(other));
}

TEST(Runner, BaselineKeyCanonicalizesWorkloadSpecSpelling)
{
    // Registry workload specs canonicalize (sorted key order), so two
    // spellings of one parameterized workload share a cached baseline;
    // names that are not valid specs pass through verbatim and still
    // cannot collide (the key stays length-prefixed and separated).
    ExperimentSpec a = quickSpec("stream:streams=2,mem_ratio=0.4", "spp");
    ExperimentSpec b = quickSpec("stream:mem_ratio=0.4,streams=2", "spp");
    EXPECT_EQ(Runner::baselineKey(a), Runner::baselineKey(b));

    ExperimentSpec c = quickSpec("stream:streams=4,mem_ratio=0.4", "spp");
    EXPECT_NE(Runner::baselineKey(a), Runner::baselineKey(c));
}

TEST(Runner, SeedDifferingSpecsDoNotShareCachedBaseline)
{
    // Regression: two specs differing only in workload_seed used to be
    // distinguishable in the key, but this pins the end-to-end
    // behaviour (distinct baselines actually simulated and cached).
    Runner runner;
    ExperimentSpec a = quickSpec("470.lbm-164B", "stride");
    ExperimentSpec b = a;
    b.workload_seed = 1234;
    const auto oa = runner.evaluate(a);
    const auto ob = runner.evaluate(b);
    EXPECT_EQ(runner.baselinesComputed(), 2u);
    // Different seeds generate different address streams, so the two
    // baselines must not be the same run.
    EXPECT_NE(oa.baseline.llc_read_misses, ob.baseline.llc_read_misses);
}

TEST(Runner, MixSizeMustMatchCores)
{
    ExperimentSpec spec = quickSpec("x", "none");
    spec.num_cores = 2;
    spec.mix = {"470.lbm-164B"};
    EXPECT_THROW(workloadsFor(spec), std::invalid_argument);
}

TEST(Runner, HomogeneousMixClonesWithDistinctSeeds)
{
    ExperimentSpec spec = quickSpec("470.lbm-164B", "none");
    spec.num_cores = 2;
    auto ws = workloadsFor(spec);
    ASSERT_EQ(ws.size(), 2u);
    // Same name, decorrelated address streams.
    EXPECT_EQ(ws[0]->name(), ws[1]->name());
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (ws[0]->next().addr == ws[1]->next().addr);
    EXPECT_LT(same, 100);
}

// --------------------------------------------------- behavioural integration

TEST(EndToEnd, StridePrefetcherWinsOnStrideWorkload)
{
    Runner runner;
    const auto o = runner.evaluate(quickSpec("470.lbm-164B", "stride"));
    EXPECT_GT(o.metrics.speedup, 1.2);
    EXPECT_GT(o.metrics.coverage, 0.5);
}

TEST(EndToEnd, SppWinsOnDeltaChains)
{
    Runner runner;
    const auto spp =
        runner.evaluate(quickSpec("459.GemsFDTD-765B", "spp"));
    EXPECT_GT(spp.metrics.speedup, 1.5);
    EXPECT_GT(spp.metrics.coverage, 0.7);
    EXPECT_LT(spp.metrics.overprediction, 0.1);
}

TEST(EndToEnd, BingoWinsOnSpatialFootprints)
{
    Runner runner;
    const auto bingo =
        runner.evaluate(quickSpec("482.sphinx3-417B", "bingo"));
    const auto spp =
        runner.evaluate(quickSpec("482.sphinx3-417B", "spp"));
    EXPECT_GT(bingo.metrics.speedup, spp.metrics.speedup);
}

TEST(EndToEnd, IrregularWorkloadPunishesOverprediction)
{
    Runner runner;
    const auto mlop =
        runner.evaluate(quickSpec("429.mcf-184B", "mlop"));
    const auto pythia =
        runner.evaluate(quickSpec("429.mcf-184B", "pythia"));
    // MLOP overpredicts heavily on pointer chasing; Pythia must not.
    EXPECT_GT(mlop.metrics.overprediction,
              5.0 * (pythia.metrics.overprediction + 0.01));
    EXPECT_GT(pythia.metrics.speedup, mlop.metrics.speedup);
}

TEST(EndToEnd, PythiaKeepsHighAccuracy)
{
    Runner runner;
    // On unprefetchable workloads the agent converges to no-prefetch; the
    // residual issue volume comes mostly from epsilon exploration, so the
    // key property is a *low overprediction rate*, with accuracy well
    // above what a pattern prefetcher achieves here (MLOP sits near 5%).
    for (const char* w : {"429.mcf-184B", "Ligra-CC"}) {
        const auto o = runner.evaluate(quickSpec(w, "pythia"));
        EXPECT_GT(o.metrics.accuracy, 0.15) << w;
        EXPECT_LT(o.metrics.overprediction, 0.3) << w;
    }
}

TEST(EndToEnd, MoreBandwidthNeverHurtsBaseline)
{
    // Sweep-shaped: the three machine points run through the pool.
    Runner runner;
    Sweep sweep;
    std::vector<double> ipc;
    for (std::uint32_t mtps : {150u, 1200u, 9600u}) {
        ExperimentSpec spec = quickSpec("462.libquantum-1343B", "none");
        spec.mtps = mtps;
        sweep.add(spec, [&ipc](const Runner::Outcome& o) {
            ipc.push_back(o.run.ipc_geomean);
        });
    }
    ParallelRunner(3).reportTo(nullptr).run(runner, sweep);
    ASSERT_EQ(ipc.size(), 3u);
    EXPECT_LT(ipc[0], ipc[1]);
    EXPECT_LE(ipc[1], ipc[2] * 1.02);
}

TEST(EndToEnd, LargerLlcNeverHurtsSpatialWorkload)
{
    Runner runner;
    Sweep sweep;
    std::vector<double> ipc;
    for (std::uint64_t bytes : {256ull * 1024, 4ull << 20}) {
        ExperimentSpec spec = quickSpec("482.sphinx3-417B", "none");
        spec.llc_bytes_per_core = bytes;
        sweep.add(spec, [&ipc](const Runner::Outcome& o) {
            ipc.push_back(o.run.ipc_geomean);
        });
    }
    ParallelRunner(2).reportTo(nullptr).run(runner, sweep);
    ASSERT_EQ(ipc.size(), 2u);
    EXPECT_LE(ipc[0], ipc[1] * 1.05);
}

TEST(EndToEnd, MultiLevelStridePlusPythiaRuns)
{
    ExperimentSpec spec = quickSpec("470.lbm-164B", "pythia");
    spec.l1_prefetcher = "stride";
    const auto res = simulate(spec);
    EXPECT_GT(res.ipc_geomean, 0.0);
    EXPECT_GT(res.prefetch_issued, 0u);
}

TEST(EndToEnd, FourCoreRunCompletes)
{
    ExperimentSpec spec = quickSpec("Ligra-BFS", "pythia");
    spec.num_cores = 4;
    spec.warmup_instrs = 10'000;
    spec.sim_instrs = 30'000;
    const auto res = simulate(spec);
    ASSERT_EQ(res.ipc.size(), 4u);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
}

TEST(EndToEnd, HeterogeneousMixRuns)
{
    ExperimentSpec spec;
    spec.prefetcher = "pythia";
    spec.num_cores = 2;
    spec.mix = {"470.lbm-164B", "429.mcf-184B"};
    spec.warmup_instrs = 10'000;
    spec.sim_instrs = 30'000;
    const auto res = simulate(spec);
    ASSERT_EQ(res.ipc.size(), 2u);
    // The regular workload should run faster than the pointer chaser.
    EXPECT_GT(res.ipc[0], res.ipc[1]);
}

TEST(EndToEnd, StrictPythiaMoreAccurateOnGraphs)
{
    Runner runner;
    ExperimentSpec basic = quickSpec("Ligra-PageRank", "pythia");
    ExperimentSpec strict = quickSpec("Ligra-PageRank", "pythia_strict");
    const auto ob = runner.evaluate(basic);
    const auto os = runner.evaluate(strict);
    EXPECT_GE(os.metrics.accuracy, ob.metrics.accuracy - 0.05);
    EXPECT_LE(os.metrics.overprediction,
              ob.metrics.overprediction + 0.02);
}

/** Determinism across the whole stack, parameterized by prefetcher. */
class EndToEndDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EndToEndDeterminism, SameSpecSameNumbers)
{
    ExperimentSpec spec = quickSpec("482.sphinx3-417B", GetParam());
    spec.warmup_instrs = 10'000;
    spec.sim_instrs = 30'000;
    const auto a = simulate(spec);
    const auto b = simulate(spec);
    EXPECT_DOUBLE_EQ(a.ipc_geomean, b.ipc_geomean);
    EXPECT_EQ(a.llc_read_misses, b.llc_read_misses);
    EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
}

INSTANTIATE_TEST_SUITE_P(
    Prefetchers, EndToEndDeterminism,
    ::testing::Values("none", "spp", "bingo", "mlop", "pythia",
                      "spp_ppf", "dspatch", "cp_hw", "power7"),
    [](const auto& info) { return info.param; });

} // namespace
} // namespace pythia::harness
