/**
 * @file
 * Integration tests across modules: the harness runner, the paper's
 * metric formulas, baseline caching, multi-level prefetching and
 * end-to-end behavioural properties of whole simulations (who should win
 * on which pattern class, monotonicity in machine parameters).
 */
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/metrics.hpp"
#include "sim/prefetcher_registry.hpp"

namespace pythia::harness {
namespace {

ExperimentSpec
quickSpec(const std::string& workload, const std::string& pf)
{
    return Experiment(workload).l2(pf).warmup(30'000).measure(80'000)
        .build();
}

// ------------------------------------------------------------------- metrics

TEST(Metrics, FormulasMatchArtifactAppendix)
{
    sim::RunResult base, with;
    base.ipc_geomean = 1.0;
    base.llc_demand_load_misses = 1000;
    base.llc_read_misses = 1000;
    with.ipc_geomean = 1.2;
    with.llc_demand_load_misses = 300;
    with.llc_read_misses = 1400;
    with.prefetch_issued = 800;
    with.prefetch_useful = 600;

    const Metrics m = computeMetrics(with, base);
    EXPECT_NEAR(m.speedup, 1.2, 1e-12);
    EXPECT_NEAR(m.coverage, 0.7, 1e-12);       // (1000-300)/1000
    EXPECT_NEAR(m.overprediction, 0.4, 1e-12); // (1400-1000)/1000
    EXPECT_NEAR(m.accuracy, 0.75, 1e-12);
}

TEST(Metrics, NegativeOverpredictionClampsToZero)
{
    sim::RunResult base, with;
    base.ipc_geomean = 1.0;
    base.llc_read_misses = 1000;
    with.ipc_geomean = 1.0;
    with.llc_read_misses = 900;
    EXPECT_DOUBLE_EQ(computeMetrics(with, base).overprediction, 0.0);
}

TEST(Metrics, AccuracyDefaultsToOneWithoutPrefetches)
{
    sim::RunResult r;
    EXPECT_DOUBLE_EQ(r.accuracy(), 1.0);
}

// -------------------------------------------------------------------- runner

TEST(Runner, RegistryKnowsAllHarnessNames)
{
    for (const auto& name : harnessPrefetcherNames()) {
        auto pf = sim::makePrefetcher(name);
        ASSERT_NE(pf, nullptr) << name;
    }
    EXPECT_EQ(sim::makePrefetcher("none"), nullptr);
}

TEST(Runner, PythiaCustomRequiresConfig)
{
    // "pythia_custom" is the one spec the registry cannot build: it
    // needs an explicit config object, attached via the builder.
    ExperimentSpec spec = quickSpec("470.lbm-164B", "pythia_custom");
    spec.warmup_instrs = 1'000;
    spec.sim_instrs = 2'000;
    EXPECT_THROW(simulate(spec), std::invalid_argument);

    const auto res = Experiment("470.lbm-164B")
                         .l2Pythia(rl::PythiaConfig{})
                         .warmup(1'000)
                         .measure(2'000)
                         .simulate();
    EXPECT_GT(res.ipc_geomean, 0.0);
}

TEST(Runner, BaselineCachedAcrossEvaluations)
{
    Runner runner;
    (void)runner.evaluate(quickSpec("470.lbm-164B", "stride"));
    EXPECT_EQ(runner.baselinesComputed(), 1u);
    (void)runner.evaluate(quickSpec("470.lbm-164B", "streamer"));
    EXPECT_EQ(runner.baselinesComputed(), 1u); // same machine+workload
    (void)runner.evaluate(quickSpec("462.libquantum-1343B", "stride"));
    EXPECT_EQ(runner.baselinesComputed(), 2u);
}

TEST(Runner, MixSizeMustMatchCores)
{
    ExperimentSpec spec = quickSpec("x", "none");
    spec.num_cores = 2;
    spec.mix = {"470.lbm-164B"};
    EXPECT_THROW(workloadsFor(spec), std::invalid_argument);
}

TEST(Runner, HomogeneousMixClonesWithDistinctSeeds)
{
    ExperimentSpec spec = quickSpec("470.lbm-164B", "none");
    spec.num_cores = 2;
    auto ws = workloadsFor(spec);
    ASSERT_EQ(ws.size(), 2u);
    // Same name, decorrelated address streams.
    EXPECT_EQ(ws[0]->name(), ws[1]->name());
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (ws[0]->next().addr == ws[1]->next().addr);
    EXPECT_LT(same, 100);
}

// --------------------------------------------------- behavioural integration

TEST(EndToEnd, StridePrefetcherWinsOnStrideWorkload)
{
    Runner runner;
    const auto o = runner.evaluate(quickSpec("470.lbm-164B", "stride"));
    EXPECT_GT(o.metrics.speedup, 1.2);
    EXPECT_GT(o.metrics.coverage, 0.5);
}

TEST(EndToEnd, SppWinsOnDeltaChains)
{
    Runner runner;
    const auto spp =
        runner.evaluate(quickSpec("459.GemsFDTD-765B", "spp"));
    EXPECT_GT(spp.metrics.speedup, 1.5);
    EXPECT_GT(spp.metrics.coverage, 0.7);
    EXPECT_LT(spp.metrics.overprediction, 0.1);
}

TEST(EndToEnd, BingoWinsOnSpatialFootprints)
{
    Runner runner;
    const auto bingo =
        runner.evaluate(quickSpec("482.sphinx3-417B", "bingo"));
    const auto spp =
        runner.evaluate(quickSpec("482.sphinx3-417B", "spp"));
    EXPECT_GT(bingo.metrics.speedup, spp.metrics.speedup);
}

TEST(EndToEnd, IrregularWorkloadPunishesOverprediction)
{
    Runner runner;
    const auto mlop =
        runner.evaluate(quickSpec("429.mcf-184B", "mlop"));
    const auto pythia =
        runner.evaluate(quickSpec("429.mcf-184B", "pythia"));
    // MLOP overpredicts heavily on pointer chasing; Pythia must not.
    EXPECT_GT(mlop.metrics.overprediction,
              5.0 * (pythia.metrics.overprediction + 0.01));
    EXPECT_GT(pythia.metrics.speedup, mlop.metrics.speedup);
}

TEST(EndToEnd, PythiaKeepsHighAccuracy)
{
    Runner runner;
    // On unprefetchable workloads the agent converges to no-prefetch; the
    // residual issue volume comes mostly from epsilon exploration, so the
    // key property is a *low overprediction rate*, with accuracy well
    // above what a pattern prefetcher achieves here (MLOP sits near 5%).
    for (const char* w : {"429.mcf-184B", "Ligra-CC"}) {
        const auto o = runner.evaluate(quickSpec(w, "pythia"));
        EXPECT_GT(o.metrics.accuracy, 0.15) << w;
        EXPECT_LT(o.metrics.overprediction, 0.3) << w;
    }
}

TEST(EndToEnd, MoreBandwidthNeverHurtsBaseline)
{
    auto ipc_at = [](std::uint32_t mtps) {
        ExperimentSpec spec = quickSpec("462.libquantum-1343B", "none");
        spec.mtps = mtps;
        return simulate(spec).ipc_geomean;
    };
    const double slow = ipc_at(150);
    const double mid = ipc_at(1200);
    const double fast = ipc_at(9600);
    EXPECT_LT(slow, mid);
    EXPECT_LE(mid, fast * 1.02);
}

TEST(EndToEnd, LargerLlcNeverHurtsSpatialWorkload)
{
    auto ipc_at = [](std::uint64_t bytes) {
        ExperimentSpec spec = quickSpec("482.sphinx3-417B", "none");
        spec.llc_bytes_per_core = bytes;
        return simulate(spec).ipc_geomean;
    };
    EXPECT_LE(ipc_at(256 * 1024), ipc_at(4ull << 20) * 1.05);
}

TEST(EndToEnd, MultiLevelStridePlusPythiaRuns)
{
    ExperimentSpec spec = quickSpec("470.lbm-164B", "pythia");
    spec.l1_prefetcher = "stride";
    const auto res = simulate(spec);
    EXPECT_GT(res.ipc_geomean, 0.0);
    EXPECT_GT(res.prefetch_issued, 0u);
}

TEST(EndToEnd, FourCoreRunCompletes)
{
    ExperimentSpec spec = quickSpec("Ligra-BFS", "pythia");
    spec.num_cores = 4;
    spec.warmup_instrs = 10'000;
    spec.sim_instrs = 30'000;
    const auto res = simulate(spec);
    ASSERT_EQ(res.ipc.size(), 4u);
    for (double ipc : res.ipc)
        EXPECT_GT(ipc, 0.0);
}

TEST(EndToEnd, HeterogeneousMixRuns)
{
    ExperimentSpec spec;
    spec.prefetcher = "pythia";
    spec.num_cores = 2;
    spec.mix = {"470.lbm-164B", "429.mcf-184B"};
    spec.warmup_instrs = 10'000;
    spec.sim_instrs = 30'000;
    const auto res = simulate(spec);
    ASSERT_EQ(res.ipc.size(), 2u);
    // The regular workload should run faster than the pointer chaser.
    EXPECT_GT(res.ipc[0], res.ipc[1]);
}

TEST(EndToEnd, StrictPythiaMoreAccurateOnGraphs)
{
    Runner runner;
    ExperimentSpec basic = quickSpec("Ligra-PageRank", "pythia");
    ExperimentSpec strict = quickSpec("Ligra-PageRank", "pythia_strict");
    const auto ob = runner.evaluate(basic);
    const auto os = runner.evaluate(strict);
    EXPECT_GE(os.metrics.accuracy, ob.metrics.accuracy - 0.05);
    EXPECT_LE(os.metrics.overprediction,
              ob.metrics.overprediction + 0.02);
}

/** Determinism across the whole stack, parameterized by prefetcher. */
class EndToEndDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(EndToEndDeterminism, SameSpecSameNumbers)
{
    ExperimentSpec spec = quickSpec("482.sphinx3-417B", GetParam());
    spec.warmup_instrs = 10'000;
    spec.sim_instrs = 30'000;
    const auto a = simulate(spec);
    const auto b = simulate(spec);
    EXPECT_DOUBLE_EQ(a.ipc_geomean, b.ipc_geomean);
    EXPECT_EQ(a.llc_read_misses, b.llc_read_misses);
    EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
}

INSTANTIATE_TEST_SUITE_P(
    Prefetchers, EndToEndDeterminism,
    ::testing::Values("none", "spp", "bingo", "mlop", "pythia",
                      "spp_ppf", "dspatch", "cp_hw", "power7"),
    [](const auto& info) { return info.param; });

} // namespace
} // namespace pythia::harness
