/**
 * @file
 * Golden-metrics regression suite (ctest label: golden).
 *
 * Runs a fixed grid of eight ExperimentSpecs — pythia / spp / bingo /
 * stride (plus one composite), one and four cores — and compares the
 * full RunResult + Metrics against golden values checked into
 * golden_metrics.inc, bit-exact (doubles are compared with ==, the
 * golden table stores them as hexfloat literals so no decimal rounding
 * sneaks in).
 *
 * This is the contract that lets hot-path optimizations land safely:
 * any change to cache lookup, EQ search, QVStore indexing, feature
 * hashing or metrics accumulation must leave every number in this grid
 * untouched. A legitimate *modelling* change (one that is supposed to
 * alter simulation results) regenerates the table:
 *
 *     PYTHIA_GOLDEN_REGEN=1 ./test_golden_metrics
 *
 * prints the new golden_metrics.inc content between the REGEN markers
 * and writes it to golden_metrics_generated.inc in the working
 * directory; copy it over tests/golden_metrics.inc and say in the PR
 * why the numbers moved.
 */
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/experiment.hpp"

namespace {

using namespace pythia;

/** One golden grid cell: the spec axes and every pinned number. */
struct GoldenRow
{
    const char* workload;
    const char* prefetcher;
    std::uint32_t cores;
    // RunResult of the prefetched run
    double ipc_geomean;
    std::uint64_t llc_demand_load_misses;
    std::uint64_t llc_read_misses;
    std::uint64_t prefetch_issued;
    std::uint64_t prefetch_useful;
    // RunResult of the no-prefetching baseline
    double baseline_ipc_geomean;
    // Derived paper metrics
    double speedup;
    double coverage;
    double overprediction;
    double accuracy;
};

const GoldenRow kGolden[] = {
#include "golden_metrics.inc"
};

/** The grid definition; must stay in sync with the table above (regen
 *  iterates exactly this list). Windows are deliberately short — the
 *  suite pins behaviour, it does not reproduce paper numbers. */
std::vector<GoldenRow>
goldenGrid()
{
    // Only the axes; golden fields zeroed (filled by run or table).
    return {
        {"462.libquantum-1343B", "pythia", 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
        {"459.GemsFDTD-765B", "spp", 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
        {"482.sphinx3-417B", "bingo", 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
        {"429.mcf-184B", "stride", 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
        {"Ligra-CC", "stride+spp", 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
        {"Ligra-PageRank", "pythia", 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
        {"PARSEC-Canneal", "spp", 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
        {"Cloudsuite-Cassandra", "bingo", 4, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
    };
}

harness::Runner::Outcome
runCell(const GoldenRow& cell)
{
    static harness::Runner runner; // shares baselines across cells
    return harness::Experiment(cell.workload)
        .l2(cell.prefetcher)
        .cores(cell.cores)
        .warmup(20'000)
        .measure(50'000)
        .run(runner);
}

/** Bit-exact double comparison with a diff that names the cell, the
 *  field, and both decimal and hexfloat forms of each side. */
void
expectSameDouble(const GoldenRow& cell, const char* field, double got,
                 double want)
{
    EXPECT_EQ(got, want) << cell.workload << " x " << cell.prefetcher
                         << " x " << cell.cores << "c: " << field
                         << " drifted\n  golden: "
                         << ::testing::PrintToString(want) << "\n  got:    "
                         << ::testing::PrintToString(got);
}

void
expectSameU64(const GoldenRow& cell, const char* field, std::uint64_t got,
              std::uint64_t want)
{
    EXPECT_EQ(got, want) << cell.workload << " x " << cell.prefetcher
                         << " x " << cell.cores << "c: " << field
                         << " drifted";
}

void
printRow(std::FILE* f, const GoldenRow& cell,
         const harness::Runner::Outcome& o)
{
    std::fprintf(
        f,
        "{\"%s\", \"%s\", %u,\n"
        " %a, %" PRIu64 "ull, %" PRIu64 "ull, %" PRIu64 "ull, %" PRIu64
        "ull,\n"
        " %a, %a, %a, %a, %a},\n",
        cell.workload, cell.prefetcher, cell.cores, o.run.ipc_geomean,
        o.run.llc_demand_load_misses, o.run.llc_read_misses,
        o.run.prefetch_issued, o.run.prefetch_useful,
        o.baseline.ipc_geomean, o.metrics.speedup, o.metrics.coverage,
        o.metrics.overprediction, o.metrics.accuracy);
}

bool
regenMode()
{
    const char* env = std::getenv("PYTHIA_GOLDEN_REGEN");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

TEST(GoldenMetrics, GridMatchesGoldenTable)
{
    const std::vector<GoldenRow> grid = goldenGrid();

    if (regenMode()) {
        std::FILE* inc =
            std::fopen("golden_metrics_generated.inc", "w");
        std::printf("// ---- REGEN BEGIN: tests/golden_metrics.inc ----\n");
        for (const GoldenRow& cell : grid) {
            const auto o = runCell(cell);
            printRow(stdout, cell, o);
            if (inc)
                printRow(inc, cell, o);
        }
        std::printf("// ---- REGEN END ----\n");
        if (inc)
            std::fclose(inc);
        GTEST_SKIP() << "regen mode: golden table printed, not compared";
    }

    ASSERT_EQ(std::size(kGolden), grid.size())
        << "golden_metrics.inc rows out of sync with the grid; "
           "regenerate with PYTHIA_GOLDEN_REGEN=1";

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const GoldenRow& want = kGolden[i];
        ASSERT_STREQ(want.workload, grid[i].workload)
            << "row " << i << " axes out of sync — regenerate";
        ASSERT_STREQ(want.prefetcher, grid[i].prefetcher)
            << "row " << i << " axes out of sync — regenerate";
        ASSERT_EQ(want.cores, grid[i].cores)
            << "row " << i << " axes out of sync — regenerate";

        const auto o = runCell(want);
        expectSameDouble(want, "ipc_geomean", o.run.ipc_geomean,
                         want.ipc_geomean);
        expectSameU64(want, "llc_demand_load_misses",
                      o.run.llc_demand_load_misses,
                      want.llc_demand_load_misses);
        expectSameU64(want, "llc_read_misses", o.run.llc_read_misses,
                      want.llc_read_misses);
        expectSameU64(want, "prefetch_issued", o.run.prefetch_issued,
                      want.prefetch_issued);
        expectSameU64(want, "prefetch_useful", o.run.prefetch_useful,
                      want.prefetch_useful);
        expectSameDouble(want, "baseline_ipc_geomean",
                         o.baseline.ipc_geomean,
                         want.baseline_ipc_geomean);
        expectSameDouble(want, "speedup", o.metrics.speedup,
                         want.speedup);
        expectSameDouble(want, "coverage", o.metrics.coverage,
                         want.coverage);
        expectSameDouble(want, "overprediction",
                         o.metrics.overprediction, want.overprediction);
        expectSameDouble(want, "accuracy", o.metrics.accuracy,
                         want.accuracy);
    }
}

/** The golden run must also be reproducible within one process: the
 *  same cell evaluated twice yields bit-identical results (catches
 *  accidental cross-run state in caches or registries). */
TEST(GoldenMetrics, CellRerunIsBitIdentical)
{
    const GoldenRow cell = goldenGrid().front();
    const auto a = runCell(cell);
    const auto b = runCell(cell);
    EXPECT_EQ(a.run.ipc_geomean, b.run.ipc_geomean);
    EXPECT_EQ(a.run.llc_demand_load_misses, b.run.llc_demand_load_misses);
    EXPECT_EQ(a.run.llc_read_misses, b.run.llc_read_misses);
    EXPECT_EQ(a.run.prefetch_issued, b.run.prefetch_issued);
    EXPECT_EQ(a.metrics.speedup, b.metrics.speedup);
}

} // namespace
