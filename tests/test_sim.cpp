/**
 * @file
 * Tests for the timing simulator: replacement policies, cache hit/miss
 * semantics, MSHR behaviour, prefetch fill tracking, DRAM timing and
 * bandwidth monitoring, the core window model and the full system.
 */
#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/core.hpp"
#include "sim/dram.hpp"
#include "sim/replacement.hpp"
#include "sim/system.hpp"
#include "sim/prefetcher_registry.hpp"
#include "workloads/generators.hpp"
#include "workloads/suites.hpp"

namespace pythia::sim {
namespace {

// --------------------------------------------------------------- replacement

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy lru(1, 4);
    ReplAccess ctx;
    for (std::uint32_t w = 0; w < 4; ++w)
        lru.onInsert(0, w, ctx);
    lru.onHit(0, 0, ctx); // way 0 becomes MRU; way 1 is LRU
    EXPECT_EQ(lru.victim(0), 1u);
    lru.onHit(0, 1, ctx);
    EXPECT_EQ(lru.victim(0), 2u);
}

TEST(Ship, PrefetchInsertionsAreFirstVictims)
{
    ShipPolicy ship(1, 4, 1024);
    ReplAccess demand;
    demand.pc = 0x100;
    ReplAccess pf;
    pf.pc = 0x200;
    pf.is_prefetch = true;
    ship.onInsert(0, 0, demand);
    ship.onInsert(0, 1, pf);
    ship.onInsert(0, 2, demand);
    ship.onInsert(0, 3, demand);
    // The prefetch entered at distant RRPV and should be chosen.
    EXPECT_EQ(ship.victim(0), 1u);
}

TEST(Ship, HitPromotesToNearReref)
{
    ShipPolicy ship(1, 2, 1024);
    ReplAccess ctx;
    ctx.pc = 0x1;
    ship.onInsert(0, 0, ctx);
    ship.onInsert(0, 1, ctx);
    ship.onHit(0, 0, ctx);
    EXPECT_EQ(ship.victim(0), 1u);
}

TEST(Ship, DeadSignaturesLearnDistantInsertion)
{
    ShipPolicy ship(1, 2, 1024);
    ReplAccess dead;
    dead.pc = 0xDEAD;
    // Train the signature as never-reused until its SHCT counter is zero.
    for (int i = 0; i < 4; ++i) {
        ship.onInsert(0, 0, dead);
        ship.onEvict(0, 0, /*was_reused=*/false);
    }
    // A fresh-signature insertion followed by a dead-signature insertion:
    // the dead one enters at distant RRPV and is evicted first.
    ReplAccess live;
    live.pc = 0x500;
    ship.onInsert(0, 0, live);
    ship.onInsert(0, 1, dead);
    EXPECT_EQ(ship.victim(0), 1u);
}

TEST(ReplacementFactory, KnownAndUnknownKinds)
{
    EXPECT_NE(makeReplacement("lru", 4, 2), nullptr);
    EXPECT_NE(makeReplacement("ship", 4, 2), nullptr);
    EXPECT_THROW(makeReplacement("plru", 4, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------- dram

DramConfig
dramCfg(std::uint32_t mtps = 2400)
{
    DramConfig cfg;
    cfg.mtps = mtps;
    return cfg;
}

TEST(Dram, TimingConversion)
{
    Dram d(dramCfg());
    // 12.5ns at 4GHz = 50 cycles; 15+15+12.5ns = 170 cycles.
    EXPECT_EQ(d.rowHitCycles(), 50u);
    EXPECT_EQ(d.rowMissCycles(), 170u);
    // 64B / 8B per transfer = 8 transfers at 4000/2400 cycles each.
    EXPECT_EQ(d.lineTransferCycles(), 13u);
}

TEST(Dram, LowerMtpsMeansSlowerTransfers)
{
    Dram slow(dramCfg(150)), fast(dramCfg(9600));
    EXPECT_GT(slow.lineTransferCycles(), fast.lineTransferCycles());
    EXPECT_EQ(slow.lineTransferCycles(), 8u * 4000 / 150);
}

TEST(Dram, RowHitFasterThanRowMiss)
{
    Dram d(dramCfg());
    const Cycle first = d.access(0, 0, false);   // row miss
    const Cycle second = d.access(1, first, false); // same row: hit
    EXPECT_GT(first, 0u);
    EXPECT_LT(second - first, first - 0);
}

TEST(Dram, BusSerializesConcurrentAccesses)
{
    Dram d(dramCfg());
    // Two simultaneous accesses to different banks share one bus.
    const Cycle a = d.access(0, 0, false);
    const Cycle b = d.access(1ull << 5, 0, false); // different bank
    EXPECT_GE(b, a + d.lineTransferCycles());
}

TEST(Dram, StatsCountReadsAndWrites)
{
    Dram d(dramCfg());
    d.access(0, 0, false);
    d.access(64, 100, true);
    EXPECT_EQ(d.stats().counter("reads"), 1u);
    EXPECT_EQ(d.stats().counter("writes"), 1u);
}

TEST(Dram, UtilizationRisesUnderLoad)
{
    Dram d(dramCfg(150)); // slow bus saturates quickly
    Cycle t = 0;
    for (int i = 0; i < 2000; ++i)
        t = d.access(static_cast<Addr>(i) * 64, t, false);
    // One more access right at the busy frontier rolls the epoch over.
    d.access(1ull << 30, t, false);
    EXPECT_GT(d.utilization(), 0.5);
    EXPECT_TRUE(d.highUsage());
}

TEST(Dram, UtilizationLowWhenIdle)
{
    Dram d(dramCfg(9600));
    Cycle t = 0;
    for (int i = 0; i < 10; ++i) {
        d.access(static_cast<Addr>(i) * 64, t, false);
        t += 50000; // long idle gaps
    }
    EXPECT_FALSE(d.highUsage());
}

TEST(Dram, BucketsSumToOne)
{
    Dram d(dramCfg());
    Cycle t = 0;
    for (int i = 0; i < 500; ++i)
        t = d.access(static_cast<Addr>(i) * 64, t + 100, false);
    d.access(1ull << 33, t + 100000, false);
    const auto buckets = d.utilizationBuckets();
    ASSERT_EQ(buckets.size(), 4u);
    double sum = 0;
    for (double b : buckets)
        sum += b;
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

// --------------------------------------------------------------------- cache

/** Terminal memory level with fixed latency, recording accesses. */
class FakeMemory : public MemoryLevel
{
  public:
    Cycle access(const MemAccess& req) override
    {
        accesses.push_back(req);
        return req.at + latency;
    }
    const std::string& levelName() const override { return name_; }

    std::vector<MemAccess> accesses;
    Cycle latency = 100;

  private:
    std::string name_ = "fake";
};

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.name = "t";
    cfg.size_bytes = 8 * 1024; // 16 sets x 8 ways
    cfg.ways = 8;
    cfg.lookup_latency = 2;
    cfg.mshrs = 4;
    return cfg;
}

MemAccess
load(Addr block, Cycle at)
{
    MemAccess a;
    a.pc = 0x42;
    a.block = block;
    a.type = AccessType::Load;
    a.at = at;
    return a;
}

TEST(Cache, MissThenHit)
{
    FakeMemory mem;
    Cache c(smallCache(), mem);
    const Cycle t1 = c.access(load(10, 0));
    EXPECT_EQ(t1, 102u); // 2 lookup + 100 memory
    EXPECT_EQ(c.stats().counter("demand_load_miss"), 1u);

    const Cycle t2 = c.access(load(10, 200));
    EXPECT_EQ(t2, 202u); // hit: lookup only
    EXPECT_EQ(c.stats().counter("demand_load_miss"), 1u);
    EXPECT_EQ(c.stats().counter("demand_load_access"), 2u);
}

TEST(Cache, InFlightMergeWaitsForFill)
{
    FakeMemory mem;
    Cache c(smallCache(), mem);
    const Cycle fill = c.access(load(10, 0));
    // A second access before the fill completes waits until fill time.
    const Cycle t2 = c.access(load(10, 10));
    EXPECT_EQ(t2, fill);
    EXPECT_EQ(mem.accesses.size(), 1u); // merged, no duplicate request
}

TEST(Cache, MshrLimitStallsMisses)
{
    FakeMemory mem;
    Cache c(smallCache(), mem); // 4 MSHRs
    // Issue 5 distinct misses at t=0; the 5th must stall until the first
    // completes.
    Cycle last = 0;
    for (Addr b = 0; b < 5; ++b)
        last = c.access(load(b * 16 + 1, 0));
    EXPECT_GT(last, 200u); // waited for an earlier completion + 100
    EXPECT_GT(c.stats().counter("mshr_stalls"), 0u);
}

TEST(Cache, EvictionWritesBackDirtyLines)
{
    FakeMemory mem;
    CacheConfig cfg = smallCache();
    cfg.ways = 1; // direct mapped: easy conflict
    cfg.size_bytes = 16 * 64;
    Cache c(cfg, mem);

    MemAccess store = load(3, 0);
    store.type = AccessType::Store;
    c.access(store);
    // Conflict on the same set (16 sets): block 3 + 16.
    c.access(load(3 + 16, 500));
    bool saw_writeback = false;
    for (const auto& a : mem.accesses)
        saw_writeback |= (a.type == AccessType::Writeback && a.block == 3);
    EXPECT_TRUE(saw_writeback);
    EXPECT_EQ(c.stats().counter("writebacks"), 1u);
}

/** Prefetcher stub that prefetches +1 on every demand. */
class PlusOnePrefetcher : public PrefetcherApi
{
  public:
    void train(const PrefetchAccess& access,
               std::vector<PrefetchRequest>& out) override
    {
        ++trained;
        PrefetchRequest pr;
        pr.block = access.block + 1;
        out.push_back(pr);
    }
    void onFill(Addr block, Cycle at) override
    {
        fills.emplace_back(block, at);
    }
    void onPrefetchUsed(Addr block, bool timely) override
    {
        used.emplace_back(block, timely);
    }
    const std::string& name() const override { return name_; }
    std::size_t storageBytes() const override { return 0; }

    int trained = 0;
    std::vector<std::pair<Addr, Cycle>> fills;
    std::vector<std::pair<Addr, bool>> used;

  private:
    std::string name_ = "+1";
};

TEST(Cache, PrefetcherTrainedOnDemandsOnly)
{
    FakeMemory mem;
    Cache c(smallCache(), mem);
    PlusOnePrefetcher pf;
    c.setPrefetcher(&pf);
    c.access(load(100, 0));
    EXPECT_EQ(pf.trained, 1);
    EXPECT_EQ(c.stats().counter("prefetch_issued"), 1u);
    ASSERT_EQ(pf.fills.size(), 1u);
    EXPECT_EQ(pf.fills[0].first, 101u);
}

TEST(Cache, TimelyPrefetchHitReported)
{
    FakeMemory mem;
    Cache c(smallCache(), mem);
    PlusOnePrefetcher pf;
    c.setPrefetcher(&pf);
    c.access(load(100, 0));      // prefetches 101, fill at ~102+100
    c.access(load(101, 1000));   // long after the fill: timely
    ASSERT_EQ(pf.used.size(), 1u);
    EXPECT_EQ(pf.used[0].first, 101u);
    EXPECT_TRUE(pf.used[0].second);
    EXPECT_EQ(c.stats().counter("prefetch_useful_timely"), 1u);
}

TEST(Cache, LatePrefetchHitReported)
{
    FakeMemory mem;
    mem.latency = 500;
    Cache c(smallCache(), mem);
    PlusOnePrefetcher pf;
    c.setPrefetcher(&pf);
    c.access(load(100, 0));
    const Cycle t = c.access(load(101, 10)); // before the fill: late
    EXPECT_GT(t, 500u);                       // waited for the fill
    ASSERT_EQ(pf.used.size(), 1u);
    EXPECT_FALSE(pf.used[0].second);
    EXPECT_EQ(c.stats().counter("prefetch_useful_late"), 1u);
}

TEST(Cache, DuplicatePrefetchesDropped)
{
    FakeMemory mem;
    Cache c(smallCache(), mem);
    PlusOnePrefetcher pf;
    c.setPrefetcher(&pf);
    c.access(load(100, 0));
    c.access(load(100, 10)); // same demand: +1 target already present
    EXPECT_EQ(c.stats().counter("prefetch_issued"), 1u);
    EXPECT_EQ(c.stats().counter("prefetch_dropped"), 1u);
}

TEST(Cache, ReadMissCountsDemandAndPrefetchAtLowerLevel)
{
    // read_miss_total at a level counts demand misses plus *incoming*
    // prefetch requests that miss — the LLC-side accounting the paper's
    // overprediction formula uses. A two-level stack demonstrates it:
    // the upper cache's prefetcher traffic reaches the lower level.
    FakeMemory mem;
    CacheConfig lower_cfg = smallCache();
    lower_cfg.name = "lower";
    Cache lower(lower_cfg, mem);
    Cache upper(smallCache(), lower);
    PlusOnePrefetcher pf;
    upper.setPrefetcher(&pf);
    upper.access(load(100, 0)); // demand miss + prefetch of 101
    EXPECT_EQ(upper.stats().counter("read_miss_total"), 1u);
    EXPECT_EQ(lower.stats().counter("read_miss_total"), 2u);
}

TEST(Cache, FlushClearsContents)
{
    FakeMemory mem;
    Cache c(smallCache(), mem);
    c.access(load(10, 0));
    EXPECT_TRUE(c.contains(10));
    c.flush();
    EXPECT_FALSE(c.contains(10));
    EXPECT_EQ(c.stats().counter("demand_load_access"), 0u);
}

// ---------------------------------------------------------------------- core

TEST(Core, IpcBoundedByWidthWithoutMemory)
{
    // A workload whose loads always hit needs IPC close to width.
    FakeMemory mem;
    mem.latency = 0;
    CacheConfig cfg = smallCache();
    cfg.lookup_latency = 1;
    Cache l1(cfg, mem);

    wl::GenParams p;
    p.mem_ratio = 0.1;
    p.write_ratio = 0.0;
    p.dep_ratio = 0.0;
    wl::StreamGen w("s", 1, p, 1);

    CoreConfig core_cfg;
    Core core(core_cfg, 0, l1, w);
    core.runUntil(20000);
    const double ipc = static_cast<double>(core.instrsRetired()) /
                       core.currentCycle();
    EXPECT_GT(ipc, 1.0);
    EXPECT_LE(ipc, 4.05);
}

TEST(Core, MemoryLatencyReducesIpc)
{
    FakeMemory fast_mem, slow_mem;
    fast_mem.latency = 0;
    slow_mem.latency = 400;
    Cache fast_l1(smallCache(), fast_mem);
    Cache slow_l1(smallCache(), slow_mem);

    wl::GenParams p;
    p.mem_ratio = 0.5;
    p.write_ratio = 0.0;
    p.dep_ratio = 0.5;
    wl::IrregularGen wf("w", 2, p, 0.0);
    wl::IrregularGen ws("w", 2, p, 0.0);

    Core fast(CoreConfig{}, 0, fast_l1, wf);
    Core slow(CoreConfig{}, 0, slow_l1, ws);
    fast.runUntil(50000);
    slow.runUntil(50000);
    const double ipc_fast = static_cast<double>(fast.instrsRetired()) /
                            fast.currentCycle();
    const double ipc_slow = static_cast<double>(slow.instrsRetired()) /
                            slow.currentCycle();
    EXPECT_GT(ipc_fast, 2.0 * ipc_slow);
}

TEST(Core, DependentLoadsSerialize)
{
    FakeMemory mem;
    mem.latency = 200;

    wl::GenParams dep_p;
    dep_p.mem_ratio = 0.5;
    dep_p.write_ratio = 0.0;
    dep_p.dep_ratio = 1.0;
    wl::GenParams ind_p = dep_p;
    ind_p.dep_ratio = 0.0;

    // StreamGen samples the dependence flag from GenParams (IrregularGen
    // would override it structurally), and its fresh lines always miss.
    Cache l1a(smallCache(), mem), l1b(smallCache(), mem);
    wl::StreamGen wd("d", 3, dep_p, 1);
    wl::StreamGen wi("i", 3, ind_p, 1);
    Core dep(CoreConfig{}, 0, l1a, wd);
    Core ind(CoreConfig{}, 0, l1b, wi);
    dep.runUntil(100000);
    ind.runUntil(100000);
    const double ipc_dep = static_cast<double>(dep.instrsRetired()) /
                           dep.currentCycle();
    const double ipc_ind = static_cast<double>(ind.instrsRetired()) /
                           ind.currentCycle();
    EXPECT_GT(ipc_ind, 1.5 * ipc_dep);
}

// -------------------------------------------------------------------- system

TEST(System, SingleCoreRunProducesIpc)
{
    SystemConfig cfg;
    std::vector<std::unique_ptr<wl::Workload>> w;
    w.push_back(wl::makeWorkload("470.lbm-164B"));
    System sys(cfg, std::move(w));
    sys.warmup(5000);
    const RunResult res = sys.run(20000);
    ASSERT_EQ(res.ipc.size(), 1u);
    EXPECT_GT(res.ipc[0], 0.0);
    EXPECT_LT(res.ipc[0], 4.0);
    EXPECT_GT(res.llc_demand_load_misses, 0u);
}

TEST(System, RunIsDeterministic)
{
    auto run_once = [] {
        SystemConfig cfg;
        std::vector<std::unique_ptr<wl::Workload>> w;
        w.push_back(wl::makeWorkload("482.sphinx3-417B"));
        System sys(cfg, std::move(w));
        sys.warmup(5000);
        return sys.run(20000);
    };
    const RunResult a = run_once();
    const RunResult b = run_once();
    EXPECT_DOUBLE_EQ(a.ipc_geomean, b.ipc_geomean);
    EXPECT_EQ(a.llc_demand_load_misses, b.llc_demand_load_misses);
}

TEST(System, MultiCoreContentionLowersPerCoreIpc)
{
    auto make = [](std::uint32_t cores) {
        SystemConfig cfg;
        cfg.num_cores = cores;
        // Do NOT scale channels: keep bandwidth fixed to see contention.
        std::vector<std::unique_ptr<wl::Workload>> w;
        for (std::uint32_t c = 0; c < cores; ++c)
            w.push_back(wl::makeWorkload("462.libquantum-1343B",
                                         0x1000 + c));
        return std::make_unique<System>(cfg, std::move(w));
    };
    auto one = make(1);
    one->warmup(3000);
    const double ipc1 = one->run(15000).ipc[0];
    auto four = make(4);
    four->warmup(3000);
    const double ipc4 = four->run(15000).ipc_geomean;
    EXPECT_LT(ipc4, ipc1);
}

TEST(System, PaperChannelScaling)
{
    SystemConfig cfg;
    cfg.num_cores = 1;
    cfg.applyPaperChannelScaling();
    EXPECT_EQ(cfg.dram.channels, 1u);
    cfg.num_cores = 4;
    cfg.applyPaperChannelScaling();
    EXPECT_EQ(cfg.dram.channels, 2u);
    cfg.num_cores = 12;
    cfg.applyPaperChannelScaling();
    EXPECT_EQ(cfg.dram.channels, 4u);
}

TEST(System, PrefetcherImprovesStreamingIpc)
{
    auto run_with = [](const char* pf) {
        SystemConfig cfg;
        std::vector<std::unique_ptr<wl::Workload>> w;
        w.push_back(wl::makeWorkload("462.libquantum-1343B"));
        System sys(cfg, std::move(w));
        if (auto built = makePrefetcher(pf))
            sys.attachL2Prefetcher(0, std::move(built));
        sys.warmup(20000);
        return sys.run(50000).ipc_geomean;
    };
    const double base = run_with("none");
    const double streamer = run_with("streamer");
    EXPECT_GT(streamer, 1.2 * base);
}

} // namespace
} // namespace pythia::sim
