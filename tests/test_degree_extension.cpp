/**
 * @file
 * Tests for the multi-action degree extension (top-k Q-gated actions per
 * demand) and the QVStore::topActions helper backing it.
 */
#include <gtest/gtest.h>

#include "core/agent.hpp"
#include "core/configs.hpp"
#include "core/qvstore.hpp"

namespace pythia::rl {
namespace {

constexpr Addr kBase = 1ull << 20;

QVStoreConfig
qvCfg()
{
    QVStoreConfig cfg;
    cfg.num_features = 1;
    cfg.num_planes = 2;
    cfg.plane_index_bits = 7;
    cfg.num_actions = 5;
    cfg.alpha = 0.5;
    cfg.gamma = 0.5;
    cfg.q_init = 0.0;
    return cfg;
}

TEST(TopActions, OrderedByQ)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s = {11};
    for (int i = 0; i < 10; ++i) {
        qv.update(s, 2, 40.0, s, 2);
        qv.update(s, 4, 20.0, s, 4);
    }
    const auto top = qv.topActions(s, 3);
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0], 2u);
    EXPECT_EQ(top[1], 4u);
}

TEST(TopActions, KOneMatchesMaxAction)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s = {7};
    qv.update(s, 3, 25.0, s, 3);
    const auto top = qv.topActions(s, 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0], qv.maxAction(s));
}

TEST(TopActions, KClampedToActionCount)
{
    QVStore qv(qvCfg());
    const std::vector<std::uint64_t> s = {7};
    EXPECT_EQ(qv.topActions(s, 99).size(), 5u);
}

sim::PrefetchAccess
demand(Addr block, Cycle cycle)
{
    sim::PrefetchAccess a;
    a.pc = 0x42;
    a.block = block;
    a.cycle = cycle;
    return a;
}

TEST(Degree, DegreeOneNeverEmitsMoreThanOne)
{
    PythiaConfig cfg;
    cfg.degree = 1;
    cfg.epsilon = 0.0;
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    for (int i = 0; i < 500; ++i) {
        out.clear();
        agent.train(demand(kBase + i % 64, i * 10), out);
        EXPECT_LE(out.size(), 1u);
    }
}

TEST(Degree, HigherDegreeCanEmitMore)
{
    // A learnable +1 stream with rewards flowing: several positive-Q
    // actions emerge and clear the Q-gate, so the agent uses its degree.
    PythiaConfig cfg = scaledForSimLength(basicPythiaConfig());
    cfg.epsilon = 0.0;
    PythiaPrefetcher agent(cfg);
    std::vector<sim::PrefetchRequest> out;
    std::size_t max_emitted = 0;
    for (int i = 0; i < 20000; ++i) {
        out.clear();
        agent.train(demand(kBase + (i % 4096), i * 10), out);
        for (const auto& pr : out)
            agent.onFill(pr.block, i * 10 + 5);
        max_emitted = std::max(max_emitted, out.size());
        EXPECT_LE(out.size(), 3u);
    }
    EXPECT_GT(max_emitted, 1u);
}

TEST(Degree, GateSuppressesSecondariesWhenAgentLearnsQuiet)
{
    // Random demands: after training, the no-prefetch action dominates
    // and degree>1 must not force extra prefetches out.
    PythiaConfig cfg = scaledForSimLength(basicPythiaConfig());
    cfg.epsilon = 0.0;
    PythiaPrefetcher agent(cfg);
    Rng rng(21);
    std::vector<sim::PrefetchRequest> out;
    std::size_t late_emissions = 0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        out.clear();
        agent.train(demand(kBase + rng.nextBounded(1u << 24), i * 10),
                    out);
        if (i > n - 5000)
            late_emissions += out.size();
    }
    EXPECT_LT(late_emissions, 2500u);
}

TEST(Degree, ScaledConfigUsesDegreeThree)
{
    EXPECT_EQ(scaledForSimLength(basicPythiaConfig()).degree, 3u);
    EXPECT_EQ(basicPythiaConfig().degree, 1u); // paper default untouched
}

} // namespace
} // namespace pythia::rl
