/**
 * @file
 * Property tests for prefetcher spec strings (ctest label: property).
 *
 * For every prefetcher in the registry: the bare name constructs, a
 * spec exercising every declared parameter key constructs, and the
 * parse → render → parse round trip is the identity (so a spec printed
 * into a log or CSV can be pasted back and means the same run).
 * Malformed specs must throw with a "did you mean" hint — a typo must
 * never silently run the defaults.
 */
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/spec.hpp"
#include "sim/prefetcher_registry.hpp"

namespace {

using namespace pythia;

/** Render a parsed spec list back into the canonical string form. */
std::string
render(const std::vector<ParsedSpec>& parts)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += '+';
        out += parts[i].name;
        for (std::size_t k = 0; k < parts[i].params.size(); ++k) {
            out += (k == 0 ? ':' : ',');
            out += parts[i].params[k].first;
            out += '=';
            out += parts[i].params[k].second;
        }
    }
    return out;
}

/** Spec naming @p name and setting every declared key (value "2" parses
 *  as int, unsigned and double alike — every registered key is numeric). */
std::string
fullParamSpec(const sim::PrefetcherEntry& entry)
{
    std::string spec = entry.name;
    for (std::size_t i = 0; i < entry.param_keys.size(); ++i) {
        spec += (i == 0 ? ':' : ',');
        spec += entry.param_keys[i];
        spec += "=2";
    }
    return spec;
}

TEST(SpecRoundTrip, EveryRegisteredNameConstructs)
{
    const auto names = sim::prefetcherNames();
    ASSERT_FALSE(names.empty());
    for (const auto& name : names) {
        const auto pf = sim::makePrefetcher(name);
        ASSERT_NE(pf, nullptr) << name;
    }
}

TEST(SpecRoundTrip, EveryDeclaredParameterKeyIsAccepted)
{
    for (const auto& name : sim::prefetcherNames()) {
        const sim::PrefetcherEntry* entry =
            sim::PrefetcherRegistry::instance().find(name);
        ASSERT_NE(entry, nullptr) << name;
        const std::string spec = fullParamSpec(*entry);
        EXPECT_NE(sim::makePrefetcher(spec), nullptr) << spec;
    }
}

TEST(SpecRoundTrip, ParseRenderParseIsIdentity)
{
    std::vector<std::string> corpus;
    for (const auto& name : sim::prefetcherNames()) {
        const sim::PrefetcherEntry* entry =
            sim::PrefetcherRegistry::instance().find(name);
        ASSERT_NE(entry, nullptr) << name;
        corpus.push_back(name);
        if (!entry->param_keys.empty()) {
            corpus.push_back(fullParamSpec(*entry));
            // One single-key spec per prefetcher, too.
            corpus.push_back(name + ":" + entry->param_keys.front() +
                             "=2");
        }
    }
    corpus.push_back("stride+spp+bingo");
    corpus.push_back("stride:degree=2+spp");

    for (const auto& spec : corpus) {
        const auto once = parseSpecList(spec);
        const std::string rendered = render(once);
        const auto twice = parseSpecList(rendered);
        ASSERT_EQ(once.size(), twice.size()) << spec;
        for (std::size_t i = 0; i < once.size(); ++i) {
            EXPECT_EQ(once[i].name, twice[i].name) << spec;
            EXPECT_EQ(once[i].params, twice[i].params) << spec;
        }
        // The rendered form is constructible whenever the original was.
        EXPECT_NE(sim::makePrefetcher(rendered), nullptr) << rendered;
    }
}

/** Extract the message a spec fails with; "" when it does not throw. */
std::string
errorOf(const std::string& spec)
{
    try {
        (void)sim::makePrefetcher(spec);
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return "";
}

TEST(SpecRoundTrip, MisspelledNameGetsDidYouMeanNeverDefaults)
{
    const std::string err = errorOf("sppp");
    ASSERT_FALSE(err.empty()) << "typo constructed a prefetcher";
    EXPECT_NE(err.find("did you mean"), std::string::npos) << err;
    EXPECT_NE(err.find("spp"), std::string::npos) << err;
}

TEST(SpecRoundTrip, MisspelledParameterGetsDidYouMeanNeverDefaults)
{
    for (const auto& name : sim::prefetcherNames()) {
        const sim::PrefetcherEntry* entry =
            sim::PrefetcherRegistry::instance().find(name);
        ASSERT_NE(entry, nullptr) << name;
        if (entry->param_keys.empty())
            continue;
        // Append a character: close enough for the hint, still unknown.
        const std::string key = entry->param_keys.front() + "x";
        const std::string err = errorOf(name + ":" + key + "=2");
        ASSERT_FALSE(err.empty())
            << name << ": unknown key '" << key << "' was accepted";
        EXPECT_NE(err.find("unknown parameter"), std::string::npos)
            << err;
        EXPECT_NE(err.find("did you mean"), std::string::npos) << err;
    }
}

TEST(SpecRoundTrip, StructurallyMalformedSpecsThrow)
{
    for (const char* bad :
         {"spp:", "spp:=4", "spp:foo", "spp:foo=", "+spp", "spp+",
          "none:x=1", "spp++bingo"}) {
        EXPECT_THROW((void)sim::makePrefetcher(bad),
                     std::invalid_argument)
            << bad;
    }
}

TEST(SpecRoundTrip, IllTypedValueNamesOwnerAndKey)
{
    const std::string err = errorOf("spp:max_lookahead=banana");
    ASSERT_FALSE(err.empty());
    EXPECT_NE(err.find("spp"), std::string::npos) << err;
    EXPECT_NE(err.find("max_lookahead"), std::string::npos) << err;
}

} // namespace
