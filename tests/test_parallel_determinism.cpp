/**
 * @file
 * Determinism and safety of the parallel sweep engine: a representative
 * multi-axis sweep must produce bit-identical RunResult/Metrics streams
 * for jobs=1 and jobs=8 (catching stray shared RNG or stats state), the
 * ordered replay must follow declaration order regardless of worker
 * scheduling, the shared baseline cache must compute each key exactly
 * once under contention, and job exceptions must propagate
 * deterministically.
 *
 * The determinism rule extends across the process boundary (DESIGN.md
 * §11): workers=N subprocesses via harness::ShardCoordinator must
 * reproduce the same bits as the thread pool, and a job exception must
 * surface as the same type with the same message whatever the topology.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "harness/shard.hpp"
#include "harness/sweep.hpp"

namespace pythia::harness {
namespace {

/** Every RunResult field, compared exactly (no tolerance: doubles from
 *  the same deterministic simulation must match to the bit). */
void
expectBitIdentical(const sim::RunResult& a, const sim::RunResult& b)
{
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.ipc_geomean, b.ipc_geomean);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.llc_demand_load_misses, b.llc_demand_load_misses);
    EXPECT_EQ(a.llc_read_misses, b.llc_read_misses);
    EXPECT_EQ(a.prefetch_issued, b.prefetch_issued);
    EXPECT_EQ(a.prefetch_useful, b.prefetch_useful);
    EXPECT_EQ(a.prefetch_useless, b.prefetch_useless);
    EXPECT_EQ(a.prefetch_late, b.prefetch_late);
    EXPECT_EQ(a.dram_buckets, b.dram_buckets);
    EXPECT_EQ(a.dram_utilization, b.dram_utilization);
}

void
expectBitIdentical(const Metrics& a, const Metrics& b)
{
    EXPECT_EQ(a.speedup, b.speedup);
    EXPECT_EQ(a.coverage, b.coverage);
    EXPECT_EQ(a.overprediction, b.overprediction);
    EXPECT_EQ(a.accuracy, b.accuracy);
}

/** A cross-section of the grids the benches run: workloads x
 *  prefetchers, plus a multi-core and a bandwidth-constrained point. */
Sweep
representativeSweep()
{
    Sweep sweep;
    for (const char* w :
         {"462.libquantum-1343B", "459.GemsFDTD-765B", "429.mcf-184B"})
        for (const char* pf : {"none", "stride", "spp", "pythia"})
            sweep.add(Experiment(w).l2(pf).warmup(5'000).measure(15'000));
    sweep.add(Experiment("Ligra-BFS")
                  .l2("pythia")
                  .cores(2)
                  .warmup(4'000)
                  .measure(8'000));
    sweep.add(Experiment("Ligra-CC")
                  .l2("bingo")
                  .mtps(300)
                  .warmup(5'000)
                  .measure(15'000));
    return sweep;
}

TEST(ParallelDeterminism, JobsOneAndJobsEightBitIdentical)
{
    Sweep reference_sweep = representativeSweep();
    Sweep parallel_sweep = representativeSweep();

    Runner reference_runner;
    const auto reference = ParallelRunner(1).reportTo(nullptr).run(
        reference_runner, reference_sweep);

    Runner parallel_runner;
    const auto parallel = ParallelRunner(8).reportTo(nullptr).run(
        parallel_runner, parallel_sweep);

    ASSERT_EQ(reference.size(), parallel.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectBitIdentical(reference[i].run, parallel[i].run);
        expectBitIdentical(reference[i].baseline, parallel[i].baseline);
        expectBitIdentical(reference[i].metrics, parallel[i].metrics);
    }
    EXPECT_EQ(reference_runner.baselinesComputed(),
              parallel_runner.baselinesComputed());
}

TEST(ParallelDeterminism, ReplayFollowsDeclarationOrder)
{
    Runner runner;
    Sweep sweep;
    std::vector<int> order;
    for (int i = 0; i < 6; ++i) {
        sweep.add(Experiment("470.lbm-164B")
                      .l2(i % 2 ? "stride" : "none")
                      .warmup(1'000)
                      .measure(2'000 + 100 * i),
                  [&order, i](const Runner::Outcome&) {
                      order.push_back(2 * i);
                  });
        sweep.then([&order, i] { order.push_back(2 * i + 1); });
    }
    ParallelRunner(4).reportTo(nullptr).run(runner, sweep);
    ASSERT_EQ(order.size(), 12u);
    for (int i = 0; i < 12; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ParallelDeterminism, BaselineComputedOncePerKeyUnderContention)
{
    // Eight workers, eight prefetchers, one machine+workload point: the
    // per-key once-semantics must simulate the shared baseline exactly
    // once, not eight times (and never race the map).
    Runner runner;
    Sweep sweep;
    for (const char* pf : {"none", "stride", "streamer", "nextline",
                           "spp", "bingo", "mlop", "pythia"})
        sweep.add(Experiment("470.lbm-164B")
                      .l2(pf)
                      .warmup(2'000)
                      .measure(6'000));
    const auto outcomes =
        ParallelRunner(8).reportTo(nullptr).run(runner, sweep);
    EXPECT_EQ(runner.baselinesComputed(), 1u);
    // Every job saw the same baseline object's numbers.
    for (const auto& o : outcomes)
        expectBitIdentical(o.baseline, outcomes.front().baseline);
}

TEST(ParallelDeterminism, FirstExceptionByJobOrderPropagates)
{
    Runner runner;
    Sweep sweep;
    std::atomic<int> callbacks{0};
    sweep.add(Experiment("470.lbm-164B").warmup(1'000).measure(2'000),
              [&callbacks](const Runner::Outcome&) { ++callbacks; });
    sweep.add(Experiment("no-such-workload").warmup(1'000).measure(
        2'000));
    sweep.add(Experiment("also-missing").warmup(1'000).measure(2'000));
    ParallelRunner pool(4);
    pool.reportTo(nullptr);
    EXPECT_THROW(pool.run(runner, sweep), std::invalid_argument);
    // No callbacks replay after a failed sweep.
    EXPECT_EQ(callbacks.load(), 0);
}

TEST(ParallelDeterminism, ReportCountsExperimentsAndWorkers)
{
    Runner runner;
    Sweep sweep;
    for (int i = 0; i < 3; ++i)
        sweep.add(
            Experiment("470.lbm-164B").warmup(1'000).measure(2'000));
    std::ostringstream report;
    ParallelRunner pool(16);
    pool.reportTo(&report);
    pool.run(runner, sweep);
    EXPECT_EQ(pool.lastReport().experiments, 3u);
    // Workers are clamped to the job count.
    EXPECT_EQ(pool.lastReport().jobs, 3u);
    EXPECT_GE(pool.lastReport().seconds, 0.0);
    EXPECT_NE(report.str().find("3 experiments"), std::string::npos);
    EXPECT_NE(report.str().find("jobs=3"), std::string::npos);
}

TEST(ParallelDeterminism, EmptySweepIsANoOp)
{
    Runner runner;
    Sweep sweep;
    std::ostringstream report;
    ParallelRunner pool(8);
    pool.reportTo(&report);
    EXPECT_TRUE(pool.run(runner, sweep).empty());
    EXPECT_TRUE(report.str().empty());
    EXPECT_EQ(runner.baselinesComputed(), 0u);
}

TEST(ParallelDeterminism, ZeroJobsResolvesToHardwareConcurrency)
{
    EXPECT_GE(ParallelRunner(0).jobs(), 1u);
    EXPECT_EQ(ParallelRunner(0).jobs(), ParallelRunner::defaultJobs());
    EXPECT_EQ(ParallelRunner(5).jobs(), 5u);
}

TEST(ParallelDeterminism, ThreadsAndProcessesBitIdentical)
{
    // The full topology matrix on one grid: jobs=8 threads vs
    // workers=4 subprocesses vs workers=1 subprocess. Any divergence
    // means per-process state (RNG seeding, registry order, baseline
    // computation) leaked into the results.
    Sweep threads_sweep = representativeSweep();
    Runner threads_runner;
    const auto threads = ParallelRunner(8).reportTo(nullptr).run(
        threads_runner, threads_sweep);

    const auto sharded = [](unsigned workers) {
        Sweep sweep = representativeSweep();
        Runner runner;
        ShardOptions opt;
        opt.workers = workers;
        ShardCoordinator coordinator(opt);
        return coordinator.run(runner, sweep);
    };
    const auto processes4 = sharded(4);
    const auto processes1 = sharded(1);

    ASSERT_EQ(threads.size(), processes4.size());
    ASSERT_EQ(threads.size(), processes1.size());
    for (std::size_t i = 0; i < threads.size(); ++i) {
        SCOPED_TRACE("job " + std::to_string(i));
        expectBitIdentical(threads[i].run, processes4[i].run);
        expectBitIdentical(threads[i].baseline, processes4[i].baseline);
        expectBitIdentical(threads[i].metrics, processes4[i].metrics);
        expectBitIdentical(threads[i].run, processes1[i].run);
        expectBitIdentical(threads[i].baseline, processes1[i].baseline);
        expectBitIdentical(threads[i].metrics, processes1[i].metrics);
    }
}

TEST(ParallelDeterminism, ErrorPropagationMatchesAcrossProcessBoundary)
{
    // A throwing job must fail the sweep identically whatever the
    // topology: same exception type, same message, no callbacks — and
    // always the FIRST failing job by declaration order, even when a
    // later failing job finishes earlier on another worker.
    const auto build = [](std::atomic<int>& callbacks) {
        Sweep sweep;
        sweep.add(
            Experiment("470.lbm-164B").warmup(1'000).measure(2'000),
            [&callbacks](const Runner::Outcome&) { ++callbacks; });
        sweep.add(Experiment("no-such-workload")
                      .warmup(1'000)
                      .measure(2'000));
        sweep.add(
            Experiment("also-missing").warmup(1'000).measure(2'000));
        return sweep;
    };

    std::string inline_what;
    {
        std::atomic<int> callbacks{0};
        Sweep sweep = build(callbacks);
        Runner runner;
        ParallelRunner pool(8);
        pool.reportTo(nullptr);
        try {
            pool.run(runner, sweep);
            FAIL() << "in-process sweep did not throw";
        } catch (const std::invalid_argument& e) {
            inline_what = e.what();
        }
        EXPECT_EQ(callbacks.load(), 0);
    }
    for (unsigned workers : {1u, 4u}) {
        SCOPED_TRACE("workers=" + std::to_string(workers));
        std::atomic<int> callbacks{0};
        Sweep sweep = build(callbacks);
        Runner runner;
        ShardOptions opt;
        opt.workers = workers;
        ShardCoordinator coordinator(opt);
        try {
            coordinator.run(runner, sweep);
            FAIL() << "sharded sweep did not throw";
        } catch (const std::invalid_argument& e) {
            EXPECT_EQ(std::string(e.what()), inline_what);
        }
        EXPECT_EQ(callbacks.load(), 0);
    }
}

} // namespace
} // namespace pythia::harness
