/**
 * @file
 * Tests for the synthetic workload substrate: generator determinism,
 * pattern properties each generator promises (these are the properties
 * the paper's evaluation relies on), trace file round-trips and the
 * suite catalog.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>

#include "common/types.hpp"
#include "workloads/generators.hpp"
#include "workloads/suites.hpp"
#include "workloads/trace.hpp"

namespace pythia::wl {
namespace {

GenParams
testParams()
{
    GenParams p;
    p.mem_ratio = 0.5;
    p.write_ratio = 0.0;
    return p;
}

// ------------------------------------------------------------ determinism

/** Every generator must replay identically after reset() and for clones
 *  with the same seed. */
class GeneratorDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorDeterminism, ResetReplaysIdentically)
{
    auto w = makeWorkload(GetParam());
    std::vector<TraceRecord> first;
    for (int i = 0; i < 500; ++i)
        first.push_back(w->next());
    w->reset();
    for (int i = 0; i < 500; ++i) {
        const TraceRecord r = w->next();
        EXPECT_EQ(r.pc, first[i].pc) << "at record " << i;
        EXPECT_EQ(r.addr, first[i].addr) << "at record " << i;
        EXPECT_EQ(r.gap, first[i].gap) << "at record " << i;
        EXPECT_EQ(r.is_write, first[i].is_write) << "at record " << i;
    }
}

TEST_P(GeneratorDeterminism, CloneWithSameSeedMatches)
{
    auto w = makeWorkload(GetParam());
    auto c = w->clone(0);
    for (int i = 0; i < 300; ++i) {
        const TraceRecord a = w->next();
        const TraceRecord b = c->next();
        EXPECT_EQ(a.addr, b.addr) << "at record " << i;
    }
}

TEST_P(GeneratorDeterminism, CloneWithNewSeedDiffers)
{
    auto w = makeWorkload(GetParam());
    auto c = w->clone(0xFEEDull);
    int same = 0;
    for (int i = 0; i < 300; ++i)
        same += (w->next().addr == c->next().addr);
    EXPECT_LT(same, 300);
}

INSTANTIATE_TEST_SUITE_P(
    AllCatalogWorkloads, GeneratorDeterminism,
    ::testing::Values("462.libquantum-1343B", "470.lbm-164B",
                      "482.sphinx3-417B", "459.GemsFDTD-765B",
                      "459.GemsFDTD-1320B", "429.mcf-184B",
                      "Ligra-PageRank", "Cloudsuite-Cassandra"),
    [](const auto& info) {
        std::string n = info.param;
        for (auto& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ------------------------------------------------------ pattern properties

TEST(StreamGen, SingleStreamIsStrictlySequential)
{
    StreamGen g("s", 1, testParams(), 1);
    Addr prev = g.next().addr;
    for (int i = 0; i < 200; ++i) {
        const Addr cur = g.next().addr;
        EXPECT_EQ(blockAddr(cur), blockAddr(prev) + 1);
        prev = cur;
    }
}

TEST(StreamGen, EachStreamHasDistinctPc)
{
    StreamGen g("s", 2, testParams(), 4);
    std::set<Addr> pcs;
    for (int i = 0; i < 500; ++i)
        pcs.insert(g.next().pc);
    EXPECT_EQ(pcs.size(), 4u);
}

TEST(StrideGen, PerPcStrideIsConstant)
{
    StrideGen g("s", 3, testParams(), {5});
    Addr prev = g.next().addr;
    for (int i = 0; i < 200; ++i) {
        const Addr cur = g.next().addr;
        EXPECT_EQ(blockAddr(cur), blockAddr(prev) + 5);
        prev = cur;
    }
}

TEST(SpatialRegionGen, FootprintRecursForSamePc)
{
    // Collect per-PC footprints over many regions: a PC must always touch
    // the same page-relative offsets (this is what Bingo/SMS learn).
    SpatialRegionGen g("s", 4, testParams(), 4, 0.3, 1);
    std::map<Addr, std::set<std::uint32_t>> per_page_offsets;
    std::map<Addr, Addr> page_pc;
    for (int i = 0; i < 5000; ++i) {
        const TraceRecord r = g.next();
        per_page_offsets[pageId(r.addr)].insert(pageOffset(r.addr));
        page_pc[pageId(r.addr)] = r.pc;
    }
    // Group footprints by PC; all completed pages of a PC must agree.
    std::map<Addr, std::set<std::set<std::uint32_t>>> by_pc;
    for (const auto& [page, offsets] : per_page_offsets)
        by_pc[page_pc[page]].insert(offsets);
    int checked = 0;
    for (const auto& [pc, footprints] : by_pc) {
        // Ignore the trailing incomplete region (subset of the full one).
        std::size_t max_size = 0;
        for (const auto& fp : footprints)
            max_size = std::max(max_size, fp.size());
        int full = 0;
        for (const auto& fp : footprints)
            full += (fp.size() == max_size);
        EXPECT_GE(full, 1);
        ++checked;
    }
    EXPECT_GT(checked, 0);
}

TEST(DeltaChainGen, DeltasFollowThePattern)
{
    DeltaChainGen g("d", 5, testParams(), {1, 2, 1, 3});
    TraceRecord prev = g.next();
    int pattern_hits = 0, in_page = 0;
    for (int i = 0; i < 1000; ++i) {
        const TraceRecord cur = g.next();
        if (pageId(cur.addr) == pageId(prev.addr)) {
            const auto d = static_cast<std::int32_t>(
                blockAddr(cur.addr) - blockAddr(prev.addr));
            ++in_page;
            pattern_hits += (d == 1 || d == 2 || d == 3);
        }
        prev = cur;
    }
    EXPECT_GT(in_page, 500);
    EXPECT_EQ(pattern_hits, in_page); // every in-page delta from the set
}

TEST(IrregularGen, ChaseLoadsAreDependentAndSpread)
{
    GenParams p = testParams();
    p.footprint_bytes = 8ull << 20;
    IrregularGen g("i", 6, p, 0.0);
    std::set<Addr> pages;
    for (int i = 0; i < 2000; ++i) {
        const TraceRecord r = g.next();
        EXPECT_TRUE(r.depends_on_prev);
        pages.insert(pageId(r.addr));
    }
    EXPECT_GT(pages.size(), 500u); // no page locality to exploit
}

TEST(GraphGen, MixesSequentialAndDependentAccesses)
{
    GraphGen g("g", 7, testParams(), 8, 0.8);
    int dependent = 0, total = 2000;
    std::set<Addr> pcs;
    for (int i = 0; i < total; ++i) {
        const TraceRecord r = g.next();
        dependent += r.depends_on_prev;
        pcs.insert(r.pc);
    }
    EXPECT_EQ(pcs.size(), 3u); // offsets scan, edges scan, data loads
    EXPECT_GT(dependent, total / 3); // data loads dominate with degree 8
}

TEST(CaseStudyGen, CompanionOffsetsAre23And11)
{
    CaseStudyGen g("c", 8, testParams());
    for (int i = 0; i < 100; ++i) {
        const TraceRecord trig = g.next();
        const TraceRecord comp = g.next();
        ASSERT_EQ(pageId(trig.addr), pageId(comp.addr));
        const auto delta = static_cast<std::int32_t>(
            blockAddr(comp.addr) - blockAddr(trig.addr));
        if (trig.pc == CaseStudyGen::kPc23)
            EXPECT_EQ(delta, 23);
        else if (trig.pc == CaseStudyGen::kPc11)
            EXPECT_EQ(delta, 11);
        else
            FAIL() << "unexpected trigger pc";
    }
}

TEST(CaseStudyGen, TriggerIsAlwaysPageFirstAccess)
{
    CaseStudyGen g("c", 9, testParams());
    for (int i = 0; i < 50; ++i) {
        const TraceRecord trig = g.next();
        EXPECT_EQ(pageOffset(trig.addr), 0u);
        (void)g.next();
    }
}

TEST(MixedPhaseGen, RotatesThroughChildren)
{
    std::vector<std::unique_ptr<Workload>> kids;
    kids.push_back(std::make_unique<StreamGen>("a", 1, testParams(), 1));
    kids.push_back(std::make_unique<StrideGen>(
        "b", 2, testParams(), std::vector<std::int32_t>{7}));
    MixedPhaseGen g("m", 3, std::move(kids), 10);
    std::set<Addr> pcs;
    for (int i = 0; i < 40; ++i)
        pcs.insert(g.next().pc);
    EXPECT_GE(pcs.size(), 2u); // both children contributed
}

TEST(GenBase, GapRespectsMemRatio)
{
    GenParams p;
    p.mem_ratio = 0.25; // expect ~3 non-memory instrs per access
    StreamGen g("s", 10, p, 1);
    double total_gap = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        total_gap += g.next().gap;
    EXPECT_NEAR(total_gap / n, 3.0, 0.3);
}

TEST(GenBase, WriteRatioRespected)
{
    GenParams p;
    p.write_ratio = 0.2;
    StreamGen g("s", 11, p, 1);
    int writes = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        writes += g.next().is_write;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.2, 0.03);
}

// ----------------------------------------------------------------- catalog

TEST(Suites, FiveSuitesNonEmpty)
{
    for (const auto& s : suiteNames()) {
        EXPECT_FALSE(suiteWorkloads(s).empty()) << s;
    }
}

TEST(Suites, AllWorkloadsInstantiable)
{
    for (const auto& spec : allWorkloads()) {
        auto w = makeWorkload(spec.name);
        ASSERT_NE(w, nullptr) << spec.name;
        EXPECT_EQ(w->name(), spec.name);
        (void)w->next();
    }
}

TEST(Suites, UnseenWorkloadsInstantiable)
{
    EXPECT_FALSE(unseenWorkloads().empty());
    for (const auto& spec : unseenWorkloads()) {
        auto w = makeWorkload(spec.name);
        ASSERT_NE(w, nullptr) << spec.name;
        (void)w->next();
    }
}

TEST(Suites, UnknownNameThrows)
{
    EXPECT_THROW(makeWorkload("no-such-trace"), std::invalid_argument);
}

TEST(Suites, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto& s : allWorkloads())
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
    for (const auto& s : unseenWorkloads())
        EXPECT_TRUE(names.insert(s.name).second) << s.name;
}

// ------------------------------------------------------------ trace file IO

TEST(TraceFile, RoundTrips)
{
    const std::string path = "/tmp/pythia_test_trace.bin";
    auto w = makeWorkload("470.lbm-164B");
    ASSERT_TRUE(writeTraceFile(path, *w, 200));

    w->reset();
    FileWorkload replay(path);
    EXPECT_EQ(replay.size(), 200u);
    for (int i = 0; i < 200; ++i) {
        const TraceRecord a = w->next();
        const TraceRecord b = replay.next();
        EXPECT_EQ(a.pc, b.pc);
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.gap, b.gap);
        EXPECT_EQ(a.is_write, b.is_write);
        EXPECT_EQ(a.depends_on_prev, b.depends_on_prev);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, LoopsAtEnd)
{
    std::vector<TraceRecord> recs(3);
    recs[0].addr = 64;
    recs[1].addr = 128;
    recs[2].addr = 192;
    FileWorkload w("mem", recs);
    for (int loop = 0; loop < 3; ++loop) {
        EXPECT_EQ(w.next().addr, 64u);
        EXPECT_EQ(w.next().addr, 128u);
        EXPECT_EQ(w.next().addr, 192u);
    }
}

TEST(TraceFile, MissingFileThrows)
{
    EXPECT_THROW(FileWorkload("/nonexistent/trace.bin"),
                 std::runtime_error);
}

TEST(TraceFile, EmptyTraceRejected)
{
    EXPECT_THROW(FileWorkload("mem", std::vector<TraceRecord>{}),
                 std::runtime_error);
}

} // namespace
} // namespace pythia::wl
