/**
 * @file
 * Microbenchmarks of Pythia's hardware critical paths (google-benchmark):
 * QVStore search (the pipelined Stage 0-4 operation of §4.2.2), SARSA
 * update, EQ search, and feature extraction. These correspond to the
 * latency/throughput concerns the paper addresses with the pipelined
 * QVStore organization.
 */
#include <benchmark/benchmark.h>

#include "core/agent.hpp"
#include "core/configs.hpp"
#include "core/eq.hpp"
#include "core/feature.hpp"
#include "core/qvstore.hpp"

namespace {

using namespace pythia;

rl::QVStoreConfig
qvCfg()
{
    rl::QVStoreConfig cfg;
    cfg.num_features = 2;
    cfg.num_planes = 3;
    cfg.plane_index_bits = 7;
    cfg.num_actions = 16;
    return cfg;
}

void
BM_QVStoreMaxActionSearch(benchmark::State& state)
{
    rl::QVStore qv(qvCfg());
    std::vector<std::uint64_t> s = {0x1234, 0x5678};
    std::uint64_t i = 0;
    for (auto _ : state) {
        s[0] = 0x1234 + i;
        s[1] = 0x5678 + i * 3;
        benchmark::DoNotOptimize(qv.maxAction(s));
        ++i;
    }
}
BENCHMARK(BM_QVStoreMaxActionSearch);

void
BM_QVStoreSarsaUpdate(benchmark::State& state)
{
    rl::QVStore qv(qvCfg());
    std::vector<std::uint64_t> s1 = {1, 2}, s2 = {3, 4};
    std::uint64_t i = 0;
    for (auto _ : state) {
        s1[0] = i;
        s2[0] = i + 1;
        qv.update(s1, static_cast<std::uint32_t>(i % 16), 12.0, s2,
                  static_cast<std::uint32_t>((i + 1) % 16));
        ++i;
    }
}
BENCHMARK(BM_QVStoreSarsaUpdate);

void
BM_EqSearch(benchmark::State& state)
{
    rl::EvaluationQueue eq(256);
    for (Addr b = 0; b < 256; ++b) {
        rl::EqEntry e;
        e.state = {b, b};
        e.prefetch_block = 0x1000 + b;
        e.has_prefetch = true;
        eq.insert(std::move(e));
    }
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(eq.search(0x1000 + (i % 512)));
        ++i;
    }
}
BENCHMARK(BM_EqSearch);

void
BM_FeatureExtraction(benchmark::State& state)
{
    rl::FeatureExtractor fx;
    const auto specs = rl::basicFeatureSpecs();
    std::uint64_t i = 0;
    for (auto _ : state) {
        fx.observe(0x400 + (i % 7) * 0x40, (1ull << 20) + i % 64);
        benchmark::DoNotOptimize(fx.extractAll(specs));
        ++i;
    }
}
BENCHMARK(BM_FeatureExtraction);

void
BM_AgentTrainStep(benchmark::State& state)
{
    rl::PythiaPrefetcher agent(rl::basicPythiaConfig());
    std::vector<sim::PrefetchRequest> out;
    std::uint64_t i = 0;
    for (auto _ : state) {
        out.clear();
        sim::PrefetchAccess a;
        a.pc = 0x400 + (i % 5) * 0x40;
        a.block = (1ull << 20) + (i % 4096);
        a.cycle = i * 10;
        agent.train(a, out);
        ++i;
    }
}
BENCHMARK(BM_AgentTrainStep);

} // namespace

BENCHMARK_MAIN();
