/**
 * @file
 * QVStore data-layout microbenchmark: the structure-of-arrays store
 * (core/qvstore.hpp) against the retained PR 3 row-cached scalar
 * reference (core/qvstore_ref.hpp), swept over the operations the
 * agent's train loop performs — action selection (max), top-k
 * selection, and the SARSA update — across several table geometries.
 *
 * The two implementations are algorithmically identical (the property
 * suite in tests/test_data_layout.cpp proves bit-exact agreement); the
 * delta here is purely data layout: contiguous per-row action vectors
 * scanned linearly versus per-cell indexed lookups. The ratio column
 * is the speedup of the SoA layout (>1 = SoA faster).
 *
 * Emits a pythia-perf-v1 artifact with --perf-out=<path>; the SoA
 * timings land as components ("layout_max_f2p3", ...) so the perf gate
 * can pin them. No external benchmark framework: plain steady_clock
 * loops with volatile sinks, like bench_micro_hotpath.
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/configs.hpp"
#include "core/qvstore.hpp"
#include "core/qvstore_ref.hpp"

namespace {

using namespace pythia;
using Clock = std::chrono::steady_clock;

volatile std::uint64_t g_sink; // defeats whole-loop elimination

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

rl::QVStoreConfig
qvCfg(std::uint32_t features, std::uint32_t planes,
      std::uint32_t actions)
{
    rl::QVStoreConfig cfg;
    cfg.num_features = features;
    cfg.num_planes = planes;
    cfg.num_actions = actions;
    return cfg;
}

/** One geometry's sweep: times max/topk/update on both layouts. */
struct Geometry
{
    const char* tag; ///< component suffix, e.g. "f2p3"
    std::uint32_t features, planes, actions;
};

/** ns/op of op() over @p iters iterations. */
template <typename Fn>
double
timeLoop(std::uint64_t iters, Fn&& op)
{
    std::uint64_t check = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i)
        check += op(i);
    g_sink = check;
    return secondsSince(t0) / static_cast<double>(iters) * 1e9;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const auto iters =
        static_cast<std::uint64_t>(300'000 * opt.sim_scale);

    const std::vector<Geometry> geometries = {
        {"f2p3", 2, 3, 16},  // the harness's basic config
        {"f3p2", 3, 2, 16},  // paper Table 6 shape (3 planes of 2 feat.)
        {"f2p3a64", 2, 3, 64}, // wide action space (degree extension)
    };

    std::printf("QVStore layout sweep: SoA (qvstore.hpp) vs scalar "
                "row-cached reference (qvstore_ref.hpp)\n");
    std::printf("  %-10s %-8s %12s %12s %8s\n", "geometry", "op",
                "soa ns/op", "ref ns/op", "ratio");

    for (const Geometry& g : geometries) {
        const rl::QVStoreConfig cfg =
            qvCfg(g.features, g.planes, g.actions);
        rl::QVStore soa(cfg);
        rl::ScalarQVStore ref(cfg);

        // Shared randomized state stream (same for both layouts).
        std::vector<std::uint64_t> s1(g.features), s2(g.features);
        auto fill = [&](std::uint64_t i) {
            for (std::uint32_t f = 0; f < g.features; ++f) {
                s1[f] = (i * (2 * f + 3)) & 0xFFF;
                s2[f] = ((i + 1) * (2 * f + 3)) & 0xFFF;
            }
        };

        struct Row
        {
            const char* op;
            double soa_ns, ref_ns;
        };
        std::vector<Row> rows;

        rows.push_back({"max",
                        timeLoop(iters,
                                 [&](std::uint64_t i) {
                                     fill(i);
                                     return soa.maxAction(s1);
                                 }),
                        timeLoop(iters, [&](std::uint64_t i) {
                            fill(i);
                            return ref.maxAction(s1);
                        })});

        std::vector<std::uint32_t> top;
        rows.push_back({"topk",
                        timeLoop(iters,
                                 [&](std::uint64_t i) {
                                     fill(i);
                                     soa.topActionsInto(s1, 4, top);
                                     return top[0];
                                 }),
                        timeLoop(iters, [&](std::uint64_t i) {
                            fill(i);
                            top = ref.topActions(s1, 4);
                            return top[0];
                        })});

        rows.push_back(
            {"update",
             timeLoop(iters,
                      [&](std::uint64_t i) {
                          fill(i);
                          const auto a = static_cast<std::uint32_t>(
                              i % g.actions);
                          soa.update(s1, a, (i & 1) ? 10.0 : -4.0, s2,
                                     a);
                          return std::uint64_t{0};
                      }),
             timeLoop(iters, [&](std::uint64_t i) {
                 fill(i);
                 const auto a =
                     static_cast<std::uint32_t>(i % g.actions);
                 ref.update(s1, a, (i & 1) ? 10.0 : -4.0, s2, a);
                 return std::uint64_t{0};
             })});

        for (const Row& r : rows) {
            std::printf("  %-10s %-8s %12.1f %12.1f %7.2fx\n", g.tag,
                        r.op, r.soa_ns, r.ref_ns,
                        r.soa_ns > 0.0 ? r.ref_ns / r.soa_ns : 0.0);
            opt.perf.setComponent(std::string("layout_") + r.op + "_" +
                                      g.tag,
                                  r.soa_ns, iters);
        }
    }

    if (!opt.perf_out.empty() && !opt.perf.writeTo(opt.perf_out))
        std::fprintf(stderr, "[perf] cannot write %s\n",
                     opt.perf_out.c_str());
    return 0;
}
