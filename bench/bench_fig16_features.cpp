/**
 * @file
 * Reproduces Fig. 16: feature-optimized Pythia on the SPEC06-like suite.
 * For every workload, a small set of candidate feature pairs is tried
 * and the best is compared against the basic configuration.
 *
 * Paper shape: per-workload feature selection adds up to a few percent
 * on top of basic Pythia, without any hardware change.
 */
#include "bench_common.hpp"

#include "core/configs.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    using rl::ControlKind;
    using rl::DataKind;
    using rl::FeatureSpec;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::workloadFlagKeys());

    // Candidate state vectors (a cross-section of the 32-feature space).
    const std::vector<std::vector<FeatureSpec>> candidates = {
        rl::basicFeatureSpecs(),
        {{ControlKind::Pc, DataKind::Delta}},
        {{ControlKind::None, DataKind::Last4Deltas}},
        {{ControlKind::Pc, DataKind::PageOffset},
         {ControlKind::None, DataKind::Last4Offsets}},
        {{ControlKind::Pc, DataKind::Delta},
         {ControlKind::PcPath3, DataKind::PageOffset}},
        {{ControlKind::None, DataKind::OffsetXorDelta},
         {ControlKind::None, DataKind::Last4Deltas}},
    };

    std::vector<std::string> workloads;
    for (const auto* w : wl::suiteWorkloads("SPEC06"))
        workloads.push_back(w->name);
    workloads = bench::workloadsOrDefault(opt, std::move(workloads));

    harness::Runner runner;
    Table table("Fig.16 — basic vs feature-optimized Pythia (SPEC06)");
    table.setHeader({"workload", "basic", "optimized", "best_features",
                     "delta"});
    auto basics = std::make_shared<std::vector<double>>();
    auto opts = std::make_shared<std::vector<double>>();
    harness::Sweep sweep;
    for (const auto& w : workloads) {
        struct Best
        {
            double basic = 0.0;
            double best = 0.0;
            std::string best_name = "basic";
        };
        auto acc = std::make_shared<Best>();
        sweep.add(bench::exp1c(w, "pythia", opt.sim_scale),
                  [acc](const harness::Runner::Outcome& o) {
                      acc->basic = o.metrics.speedup;
                      acc->best = o.metrics.speedup;
                  });
        // The candidate jobs replay after the basic job, so comparing
        // against acc->best is well-defined whatever finished first.
        for (const auto& features : candidates) {
            auto cfg = rl::scaledForSimLength(
                rl::withFeatures(rl::basicPythiaConfig(), features));
            const std::string cfg_name = cfg.name;
            sweep.add(bench::exp1c(w, "pythia", opt.sim_scale)
                          .l2Pythia(cfg),
                      [acc, cfg_name](const harness::Runner::Outcome& o) {
                          if (o.metrics.speedup > acc->best) {
                              acc->best = o.metrics.speedup;
                              acc->best_name = cfg_name;
                          }
                      });
        }
        sweep.then([&table, basics, opts, acc, w] {
            basics->push_back(std::max(1e-6, acc->basic));
            opts->push_back(std::max(1e-6, acc->best));
            table.addRow({w, Table::fmt(acc->basic),
                          Table::fmt(acc->best), acc->best_name,
                          Table::pct(acc->best / acc->basic - 1.0)});
        });
    }
    bench::runSweep(sweep, runner, opt);
    table.addRow({"GEOMEAN", Table::fmt(geomean(*basics)),
                  Table::fmt(geomean(*opts)), "-",
                  Table::pct(geomean(*opts) / geomean(*basics) - 1.0)});
    bench::finish(table, "fig16_features");
    return 0;
}
