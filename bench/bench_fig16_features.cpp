/**
 * @file
 * Reproduces Fig. 16: feature-optimized Pythia on the SPEC06-like suite.
 * For every workload, a small set of candidate feature pairs is tried
 * and the best is compared against the basic configuration.
 *
 * Paper shape: per-workload feature selection adds up to a few percent
 * on top of basic Pythia, without any hardware change.
 */
#include "bench_common.hpp"

#include "core/configs.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    using rl::ControlKind;
    using rl::DataKind;
    using rl::FeatureSpec;
    const double scale = bench::simScale(argc, argv);

    // Candidate state vectors (a cross-section of the 32-feature space).
    const std::vector<std::vector<FeatureSpec>> candidates = {
        rl::basicFeatureSpecs(),
        {{ControlKind::Pc, DataKind::Delta}},
        {{ControlKind::None, DataKind::Last4Deltas}},
        {{ControlKind::Pc, DataKind::PageOffset},
         {ControlKind::None, DataKind::Last4Offsets}},
        {{ControlKind::Pc, DataKind::Delta},
         {ControlKind::PcPath3, DataKind::PageOffset}},
        {{ControlKind::None, DataKind::OffsetXorDelta},
         {ControlKind::None, DataKind::Last4Deltas}},
    };

    harness::Runner runner;
    Table table("Fig.16 — basic vs feature-optimized Pythia (SPEC06)");
    table.setHeader({"workload", "basic", "optimized", "best_features",
                     "delta"});
    std::vector<double> basics, opts;
    for (const auto* w : wl::suiteWorkloads("SPEC06")) {
        const auto basic =
            bench::exp1c(w->name, "pythia", scale).run(runner);
        double best = basic.metrics.speedup;
        std::string best_name = "basic";
        for (const auto& features : candidates) {
            auto cfg = rl::scaledForSimLength(
                rl::withFeatures(rl::basicPythiaConfig(), features));
            const auto o = bench::exp1c(w->name, "pythia", scale)
                               .l2Pythia(cfg)
                               .run(runner);
            if (o.metrics.speedup > best) {
                best = o.metrics.speedup;
                best_name = cfg.name;
            }
        }
        basics.push_back(std::max(1e-6, basic.metrics.speedup));
        opts.push_back(std::max(1e-6, best));
        table.addRow({w->name, Table::fmt(basic.metrics.speedup),
                      Table::fmt(best), best_name,
                      Table::pct(best / basic.metrics.speedup - 1.0)});
    }
    table.addRow({"GEOMEAN", Table::fmt(geomean(basics)),
                  Table::fmt(geomean(opts)), "-",
                  Table::pct(geomean(opts) / geomean(basics) - 1.0)});
    bench::finish(table, "fig16_features");
    return 0;
}
