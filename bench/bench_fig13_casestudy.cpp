/**
 * @file
 * Reproduces Fig. 13: the GemsFDTD case study. Runs Pythia on the
 * 459.GemsFDTD-1320B trace (first page access at PC 0x436a81 followed by
 * exactly one access +23 lines ahead; PC 0x4377c5 followed by +11) and
 * samples the Q-value of representative actions for the two PC+Delta
 * feature values as training progresses.
 *
 * Paper shape: Q(+23) rises above all other actions for 0x436a81+0, and
 * Q(+11) for 0x4377c5+0.
 */
#include "bench_common.hpp"

#include "core/configs.hpp"
#include "sim/system.hpp"
#include "workloads/generators.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    // Not sweep-shaped: one System sampled as training progresses, so
    // only the strict CLI plumbing applies (jobs= is accepted but moot).
    const double scale = bench::parseBenchArgs(argc, argv).sim_scale;

    const harness::ExperimentSpec spec =
        bench::exp1c("459.GemsFDTD-1320B", "pythia", scale).build();

    auto cfg = rl::scaledForSimLength(rl::basicPythiaConfig());
    auto agent = std::make_unique<rl::PythiaPrefetcher>(cfg);
    auto* ap = agent.get();
    sim::System system(harness::systemConfigFor(spec),
                       harness::workloadsFor(spec));
    system.attachL2Prefetcher(0, std::move(agent));

    // The PC+Delta feature value of "PC X triggers the first access to a
    // page" is extracted by replaying that situation through a scratch
    // extractor (delta is 0 on a page-first access).
    auto feature_of = [&](Addr pc) {
        rl::FeatureExtractor fx;
        fx.observe(pc, blockAddr(1ull << 30)); // fresh page, delta 0
        return fx.extract(cfg.features[0]);    // PC+Delta vault
    };
    const std::uint64_t feat23 = feature_of(wl::CaseStudyGen::kPc23);
    const std::uint64_t feat11 = feature_of(wl::CaseStudyGen::kPc11);

    const std::vector<std::int32_t> shown = {1, 3, 11, 22, 23};
    Table table("Fig.13 — Q-value trajectories (case study)");
    std::vector<std::string> header = {"updates", "feature"};
    for (auto off : shown)
        header.push_back("Q(+" + std::to_string(off) + ")");
    table.setHeader(header);

    const int kSamples = 10;
    for (int s = 1; s <= kSamples; ++s) {
        system.warmup(static_cast<std::uint64_t>(
            (bench::kWarmup + bench::kSim) * scale / kSamples));
        for (auto [label, feat] :
             {std::pair<const char*, std::uint64_t>{"0x436a81+0", feat23},
              std::pair<const char*, std::uint64_t>{"0x4377c5+0",
                                                    feat11}}) {
            std::vector<std::string> row = {
                std::to_string(ap->qvstore().updates()), label};
            for (auto off : shown) {
                const std::size_t a = ap->actionIndexOf(off);
                row.push_back(Table::fmt(ap->qvstore().vaultQ(
                    0, feat, static_cast<std::uint32_t>(a))));
            }
            table.addRow(row);
        }
    }
    bench::finish(table, "fig13_casestudy");

    // Verdict rows: the argmax action for each feature.
    const auto& acts = cfg.actions;
    for (auto [label, feat] :
         {std::pair<const char*, std::uint64_t>{"0x436a81+0", feat23},
          std::pair<const char*, std::uint64_t>{"0x4377c5+0", feat11}}) {
        std::size_t best = 0;
        for (std::size_t a = 1; a < acts.size(); ++a)
            if (ap->qvstore().vaultQ(0, feat,
                                     static_cast<std::uint32_t>(a)) >
                ap->qvstore().vaultQ(0, feat,
                                     static_cast<std::uint32_t>(best)))
                best = a;
        std::cout << label << " argmax action: +" << acts[best] << "\n";
    }
    return 0;
}
