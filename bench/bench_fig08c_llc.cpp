/**
 * @file
 * Reproduces Fig. 8(c): geomean speedup while the LLC scales from 1/8x
 * to 2x of the baseline 2MB (single core).
 *
 * Paper shape: Pythia outperforms the baselines at every LLC size.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const std::vector<std::uint64_t> llc_sizes = {
        256ull << 10, 512ull << 10, 1ull << 20, 2ull << 20, 4ull << 20};
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "spp_ppf", "pythia"};
    const auto& workloads = bench::representativeWorkloads();

    harness::Runner runner;
    Table table("Fig.8(c) — geomean speedup vs LLC size (1C)");
    std::vector<std::string> header = {"llc_kb"};
    for (const auto& pf : prefetchers)
        header.push_back(pf);
    table.setHeader(header);

    harness::Sweep sweep;
    for (std::uint64_t llc : llc_sizes) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{std::to_string(llc >> 10)});
        for (const auto& pf : prefetchers)
            bench::addGeomeanSpeedup(
                sweep, workloads, pf,
                [llc](harness::ExperimentBuilder& e) {
                    e.llcBytesPerCore(llc);
                },
                opt.sim_scale,
                [row](double g) { row->push_back(Table::fmt(g)); });
        sweep.then([&table, row] { table.addRow(*row); });
    }
    bench::runSweep(sweep, runner, opt);
    bench::finish(table, "fig08c_llc");
    return 0;
}
