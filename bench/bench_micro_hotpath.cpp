/**
 * @file
 * Microbenchmark of the per-simulation hot path.
 *
 * Two parts:
 *
 *  1. Micro loops — tight timing of the inner loops the profile is
 *     dominated by, printed as ns/op and recorded as per-component
 *     entries in the perf artifact ("components" in pythia-perf-v1):
 *     qvstore_max, qvstore_update, eq_insert, eq_match,
 *     feature_extract, cache_access. These localize a regression the
 *     end-to-end number only detects, and the CI perf gate pins each
 *     one individually (tools/perf_gate.py).
 *
 *  2. End-to-end sims/sec — a fixed sweep of single-core experiments
 *     executed through the normal harness. With --perf-out= this lands
 *     in the pythia-perf-v1 JSON ("total.sims_per_sec"), which is the
 *     number the perf trajectory tracks PR over PR (DESIGN.md §7).
 *
 * profile=1 wraps the end-to-end sweep in a ScopedProfiler (gperftools
 * when linked, perf markers otherwise — DESIGN.md §10).
 *
 * jobs defaults to 1 here (unlike the figure benches): the artifact
 * tracks single-thread hot-path speed, not pool scaling.
 */
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "core/agent.hpp"
#include "core/configs.hpp"
#include "core/eq.hpp"
#include "core/feature.hpp"
#include "core/qvstore.hpp"
#include "sim/cache.hpp"
#include "sim/dram.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Print one micro-loop result line and record it as a perf-artifact
/// component.
void
report(pythia::bench::BenchOptions& opt, const char* name,
       std::uint64_t iters, double seconds, std::uint64_t check)
{
    const double ns_per_op =
        seconds / static_cast<double>(iters) * 1e9;
    std::printf("  %-22s %10" PRIu64 " ops  %8.1f ns/op  (check %"
                PRIu64 ")\n",
                name, iters, ns_per_op, check);
    opt.perf.setComponent(name, ns_per_op, iters);
}

/// Feature extraction: observe + extract the basic 2-feature vector.
void
microFeatures(pythia::bench::BenchOptions& opt, std::uint64_t iters)
{
    using namespace pythia;
    rl::FeatureExtractor fx;
    const auto specs = rl::basicFeatureSpecs();
    std::uint64_t check = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        fx.observe(0x400000 + (i & 0xFF) * 4, (i * 3) & 0xFFFF);
        const auto state = fx.extractAll(specs);
        check += state[0] ^ state[1];
    }
    report(opt, "feature_extract", iters, secondsSince(t0), check);
}

/// QVStore action selection: the linear max-scan over the SoA rows.
void
microQvstoreMax(pythia::bench::BenchOptions& opt, std::uint64_t iters)
{
    using namespace pythia;
    rl::QVStoreConfig cfg;
    rl::QVStore qv(cfg);
    std::uint64_t s1[2] = {0, 0};
    std::uint64_t check = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        s1[0] = i & 0x3FF;
        s1[1] = (i * 7) & 0x3FF;
        check += qv.maxAction(s1, 2);
    }
    report(opt, "qvstore_max", iters, secondsSince(t0), check);
}

/// QVStore SARSA update: two row lookups + one plane-strided write.
void
microQvstoreUpdate(pythia::bench::BenchOptions& opt,
                   std::uint64_t iters)
{
    using namespace pythia;
    rl::QVStoreConfig cfg;
    rl::QVStore qv(cfg);
    std::uint64_t s1[2] = {0, 0}, s2[2] = {0, 0};
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        s1[0] = i & 0x3FF;
        s1[1] = (i * 7) & 0x3FF;
        s2[0] = (i + 1) & 0x3FF;
        s2[1] = ((i + 1) * 7) & 0x3FF;
        const auto a = static_cast<std::uint32_t>(i) %
                       cfg.num_actions;
        qv.update(s1, 2, a, (i & 1) ? 10.0 : -4.0, s2, 2, a);
    }
    report(opt, "qvstore_update", iters, secondsSince(t0),
           qv.updates());
}

/// EQ insert churn: ring insert + evict + pending-index maintenance.
void
microEqInsert(pythia::bench::BenchOptions& opt, std::uint64_t iters)
{
    using namespace pythia;
    rl::EvaluationQueue eq(256);
    std::uint64_t check = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        rl::EqEntry e;
        e.state = {i & 0xFF, (i * 3) & 0xFF};
        e.action = static_cast<std::uint32_t>(i & 0xF);
        e.prefetch_block = 0x1000 + (i & 0x1FF);
        e.has_prefetch = true;
        eq.insert(std::move(e));
        check += eq.size();
    }
    report(opt, "eq_insert", iters, secondsSince(t0), check);
}

/// EQ demand matching: mostly-miss searches plus periodic fill marks,
/// as in a real run (the demand stream rarely matches a queued block).
void
microEqMatch(pythia::bench::BenchOptions& opt, std::uint64_t iters)
{
    using namespace pythia;
    rl::EvaluationQueue eq(256);
    for (std::uint64_t i = 0; i < 256; ++i) {
        rl::EqEntry e;
        e.state = {i & 0xFF, (i * 3) & 0xFF};
        e.action = static_cast<std::uint32_t>(i & 0xF);
        e.prefetch_block = 0x1000 + (i & 0x1FF);
        e.has_prefetch = true;
        eq.insert(std::move(e));
    }
    std::uint64_t check = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        check += eq.searchAll(0x5000 + (i & 0x3FF)).size();
        if ((i & 7) == 0)
            check += eq.markFill(0x1000 + (i & 0x1FF), i) ? 1 : 0;
        if ((i & 15) == 0)
            check += eq.searchAll(0x1000 + (i & 0x1FF)).size();
    }
    report(opt, "eq_match", iters, secondsSince(t0), check);
}

/// Cache: demand loads over a strided footprint that misses regularly.
void
microCache(pythia::bench::BenchOptions& opt, std::uint64_t iters)
{
    using namespace pythia;
    sim::DramConfig dram_cfg;
    sim::Dram dram(dram_cfg);
    sim::DramLevel dram_level(dram);
    sim::CacheConfig cc;
    cc.name = "l2";
    cc.size_bytes = 256 * 1024;
    cc.ways = 8;
    sim::Cache cache(cc, dram_level);
    std::uint64_t check = 0;
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) {
        sim::MemAccess req;
        req.pc = 0x400000 + (i & 0x3F) * 4;
        req.block = (i * 17) & 0x7FFFF;
        req.type = (i & 7) == 7 ? AccessType::Store : AccessType::Load;
        req.at = i;
        check += cache.access(req);
    }
    report(opt, "cache_access", iters, secondsSince(t0), check);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    if (!opt.cli.has("jobs"))
        opt.jobs = 1; // track single-thread speed unless asked otherwise

    // ---- part 1: micro loops -------------------------------------------
    const auto base =
        static_cast<std::uint64_t>(200'000 * opt.sim_scale);
    std::printf("hot-path micro loops (scale with sim_scale):\n");
    microFeatures(opt, base * 10);
    microQvstoreMax(opt, base * 5);
    microQvstoreUpdate(opt, base);
    microEqInsert(opt, base * 5);
    microEqMatch(opt, base * 5);
    microCache(opt, base * 10);

    // ---- part 2: end-to-end sims/sec -----------------------------------
    // A pythia-heavy cross-section: the RL loop exercises every hot
    // structure at once; spp/bingo/stride cover the classic table walks.
    harness::Runner runner;
    harness::Sweep sweep;
    const std::vector<std::pair<std::string, std::string>> sims = {
        {"462.libquantum-1343B", "pythia"},
        {"459.GemsFDTD-765B", "pythia"},
        {"482.sphinx3-417B", "pythia"},
        {"429.mcf-184B", "pythia"},
        {"Ligra-PageRank", "spp"},
        {"PARSEC-Canneal", "bingo"},
        {"Ligra-CC", "stride"},
        {"Cloudsuite-Cassandra", "spp"},
    };
    Table table("hot-path end-to-end (bench-standard windows)");
    table.setHeader({"workload", "prefetcher", "speedup"});
    for (const auto& [w, pf] : sims)
        sweep.add(bench::exp1c(w, pf, opt.sim_scale),
                  [&table, w = w, pf = pf](
                      const harness::Runner::Outcome& o) {
                      table.addRow({w, pf,
                                    Table::fmt(o.metrics.speedup)});
                  });
    {
        harness::ScopedProfiler prof("bench_micro_hotpath",
                                     opt.profile);
        bench::runSweep(sweep, runner, opt);
    }
    std::printf("end-to-end: %.2f sims/sec (jobs=%u)\n",
                opt.perf.totalSimsPerSecond(), opt.jobs);
    bench::finish(table, "micro_hotpath");
    return 0;
}
