/**
 * @file
 * Reproduces Fig. 22 (Appendix B.5): Pythia versus the IBM POWER7-style
 * adaptive stream prefetcher, per suite, single- and four-core.
 *
 * Paper shape: Pythia wins because it captures pattern classes beyond
 * streams/strides, and its margin grows with core count (it adapts
 * faster than the epoch-based control loop).
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    harness::Runner runner;

    for (std::uint32_t cores : {1u, 4u}) {
        Table table("Fig.22 — POWER7-style vs Pythia (" +
                    std::to_string(cores) + "C)");
        table.setHeader({"suite", "power7", "pythia"});
        auto g_p7 = std::make_shared<std::vector<double>>();
        auto g_py = std::make_shared<std::vector<double>>();
        harness::Sweep sweep;
        for (const auto& suite : wl::suiteNames()) {
            std::vector<std::string> names;
            for (const auto* w : wl::suiteWorkloads(suite))
                names.push_back(w->name);
            if (cores > 1 && names.size() > 2)
                names.resize(2);
            auto tweak = [cores](harness::ExperimentBuilder& e) {
                e.cores(cores);
                if (cores > 1)
                    e.scaleWindows(0.5);
            };
            auto p7 = std::make_shared<double>(0.0);
            auto py = std::make_shared<double>(0.0);
            bench::addGeomeanSpeedup(sweep, names, "power7", tweak,
                                     opt.sim_scale,
                                     [p7](double g) { *p7 = g; });
            bench::addGeomeanSpeedup(sweep, names, "pythia", tweak,
                                     opt.sim_scale,
                                     [py](double g) { *py = g; });
            sweep.then([&table, g_p7, g_py, p7, py, suite] {
                g_p7->push_back(*p7);
                g_py->push_back(*py);
                table.addRow({suite, Table::fmt(*p7), Table::fmt(*py)});
            });
        }
        bench::runSweep(sweep, runner, opt);
        table.addRow({"GEOMEAN", Table::fmt(geomean(*g_p7)),
                      Table::fmt(geomean(*g_py))});
        bench::finish(table,
                      "fig22_power7_" + std::to_string(cores) + "c");
    }
    return 0;
}
