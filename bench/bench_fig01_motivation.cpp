/**
 * @file
 * Reproduces Fig. 1: coverage, overprediction and IPC improvement of SPP,
 * Bingo and Pythia on the six motivating example workloads.
 *
 * Paper shape to check: Bingo beats SPP on sphinx3 / Canneal / Facesim
 * (region footprints); SPP beats Bingo on GemsFDTD (in-page deltas);
 * overpredicting prefetchers lose performance on Ligra-CC (bandwidth).
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::workloadFlagKeys());

    const std::vector<std::string> workloads = bench::workloadsOrDefault(
        opt, {"482.sphinx3-417B", "PARSEC-Canneal", "PARSEC-Facesim",
              "459.GemsFDTD-765B", "Ligra-CC", "Ligra-PageRankDelta"});
    const std::vector<std::string> prefetchers = {"spp", "bingo",
                                                  "pythia"};

    harness::Runner runner;
    Table table("Fig.1 — motivation: coverage / overprediction / IPC");
    table.setHeader({"workload", "prefetcher", "coverage", "overpred",
                     "ipc_improvement"});
    harness::Sweep sweep;
    sweep.grid(workloads, prefetchers,
               [&](const std::string& w, const std::string& pf) {
                   return bench::exp1c(w, pf, opt.sim_scale);
               },
               [&](const std::string& w, const std::string& pf,
                   const harness::Runner::Outcome& o) {
                   table.addRow({w, pf, Table::pct(o.metrics.coverage),
                                 Table::pct(o.metrics.overprediction),
                                 Table::pct(o.metrics.speedup - 1.0)});
               });
    bench::runSweep(sweep, runner, opt);
    bench::finish(table, "fig01_motivation");
    return 0;
}
