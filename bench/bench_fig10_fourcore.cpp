/**
 * @file
 * Reproduces Fig. 10: (a) per-suite geomean speedup in the four-core
 * system (homogeneous mixes plus a heterogeneous Mix row) and (b) the
 * prefetcher-combination comparison at four cores.
 *
 * Paper shape: Pythia's margin grows versus single-core; stacking more
 * prefetchers *hurts* at four cores (additive overpredictions under a
 * shared bandwidth budget) while Pythia stays on top.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const double scale = opt.sim_scale;
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};
    // One representative workload per suite (4-core runs are 4x the work).
    const std::vector<std::pair<std::string, std::string>> picks = {
        {"SPEC06", "459.GemsFDTD-765B"},
        {"SPEC06", "482.sphinx3-417B"},
        {"SPEC17", "605.mcf_s-665B"},
        {"PARSEC", "PARSEC-Canneal"},
        {"Ligra", "Ligra-PageRank"},
        {"Cloudsuite", "Cloudsuite-Cassandra"},
    };

    auto four_core = [&](harness::ExperimentBuilder& e) {
        e.cores(4).scaleWindows(0.5);
    };

    harness::Runner runner;
    Table a("Fig.10(a) — per-suite geomean speedup (4C)");
    std::vector<std::string> header = {"suite/mix"};
    for (const auto& pf : prefetchers)
        header.push_back(pf);
    a.setHeader(header);

    std::map<std::string, std::vector<double>> overall;
    harness::Sweep sweep_a;
    for (const auto& [suite, workload] : picks) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{suite + "/" + workload});
        for (const auto& pf : prefetchers) {
            harness::ExperimentBuilder exp =
                bench::exp1c(workload, pf, scale);
            four_core(exp);
            sweep_a.add(exp,
                        [&, row, pf](const harness::Runner::Outcome& o) {
                            row->push_back(
                                Table::fmt(o.metrics.speedup));
                            overall[pf].push_back(
                                std::max(1e-6, o.metrics.speedup));
                        });
        }
        sweep_a.then([&a, row] { a.addRow(*row); });
    }
    // Heterogeneous mix row.
    {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{"Mix(hetero)"});
        for (const auto& pf : prefetchers) {
            sweep_a.add(
                harness::Experiment()
                    .mix({"462.libquantum-1343B", "429.mcf-184B",
                          "PARSEC-Canneal", "Ligra-CC"})
                    .cores(4)
                    .l2(pf)
                    .warmup(static_cast<std::uint64_t>(bench::kWarmup *
                                                       scale / 2))
                    .measure(static_cast<std::uint64_t>(bench::kSim *
                                                        scale / 2)),
                [&, row, pf](const harness::Runner::Outcome& o) {
                    row->push_back(Table::fmt(o.metrics.speedup));
                    overall[pf].push_back(
                        std::max(1e-6, o.metrics.speedup));
                });
        }
        sweep_a.then([&a, row] { a.addRow(*row); });
    }
    bench::runSweep(sweep_a, runner, opt);
    std::vector<std::string> grow = {"GEOMEAN"};
    for (const auto& pf : prefetchers)
        grow.push_back(Table::fmt(geomean(overall[pf])));
    a.addRow(grow);
    bench::finish(a, "fig10a_fourcore");

    Table b("Fig.10(b) — Pythia vs prefetcher stacks (4C)");
    b.setHeader({"prefetcher", "geomean_speedup"});
    std::vector<std::string> workloads;
    for (const auto& [suite, w] : picks)
        workloads.push_back(w);
    harness::Sweep sweep_b;
    for (const char* pf : {"st", "st_s", "st_s_b", "st_s_b_d",
                           "st_s_b_d_m", "pythia"}) {
        bench::addGeomeanSpeedup(sweep_b, workloads, pf, four_core,
                                 scale, [&b, pf](double g) {
                                     b.addRow({pf, Table::fmt(g)});
                                 });
    }
    bench::runSweep(sweep_b, runner, opt);
    bench::finish(b, "fig10b_combinations");
    return 0;
}
