/**
 * @file
 * Reproduces Fig. 17/18: the per-trace performance line graphs (s-curve)
 * of SPP, Bingo, MLOP and Pythia — single-core over the full catalog and
 * four-core over the representative set — sorted by Pythia's speedup.
 *
 * Paper shape: Pythia improves on the baseline almost everywhere, with
 * the largest wins on irregular traces and the known loss cases on
 * heavy streamers (where Bingo's full-region prefetch is unbeatable).
 *
 * Every cell runs as ONE streamed SimSession (Runner::evaluateWindowed;
 * the no-prefetching baseline streams once per workload and is cached).
 * By default the session is observed at a single boundary, which is
 * bit-identical to the batch path, so the tables match the pre-session
 * bench exactly. windows= / window_instrs= split the observation into
 * finer windows and series_out=<path> dumps the per-window metric
 * evolution of every cell — the s-curve over instruction windows — as
 * one labeled CSV. Note: multi-core cells interleave cores per window,
 * so window splits are a (deterministic) scheduling variant of the
 * figure, not a reproduction of the windows=1 numbers.
 */
#include <algorithm>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(
        argc, argv,
        bench::joinFlagKeys(bench::sessionFlagKeys(),
                            bench::workloadFlagKeys()));
    const bench::SessionOptions sopt = bench::parseSessionFlags(opt);
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};

    harness::Runner runner;
    std::vector<bench::SessionCell> cells;

    struct Row
    {
        std::string workload;
        std::map<std::string, double> speedup;
    };

    auto build = [&](const std::vector<std::string>& workloads,
                     std::uint32_t cores, const std::string& tag) {
        std::vector<Row> rows(workloads.size());
        harness::Sweep sweep;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            rows[i].workload = workloads[i];
            for (const auto& pf : prefetchers) {
                harness::ExperimentBuilder exp =
                    bench::exp1c(workloads[i], pf, opt.sim_scale)
                        .cores(cores);
                if (cores > 1)
                    exp.scaleWindows(0.5);
                const harness::ExperimentSpec spec = exp.build();
                const std::vector<std::uint64_t> ends =
                    bench::windowEnds(spec.sim_instrs, sopt);
                auto cell =
                    std::make_shared<harness::Runner::WindowedOutcome>();
                sweep.addTask(
                    [spec, ends, cell](harness::Runner& r) {
                        *cell = r.evaluateWindowed(spec, ends);
                        return cell->final;
                    },
                    [&rows, i, pf](const harness::Runner::Outcome& o) {
                        rows[i].speedup[pf] = o.metrics.speedup;
                    });
                cells.emplace_back(workloads[i] + "," + pf + "," +
                                       std::to_string(cores),
                                   cell);
            }
        }
        bench::runSweep(sweep, runner, opt);
        std::sort(rows.begin(), rows.end(),
                  [](const Row& a, const Row& b) {
                      return a.speedup.at("pythia") <
                             b.speedup.at("pythia");
                  });
        Table table("Fig." + tag + " — per-trace speedups (" +
                    std::to_string(cores) + "C, sorted by Pythia)");
        std::vector<std::string> header = {"workload"};
        for (const auto& pf : prefetchers)
            header.push_back(pf);
        table.setHeader(header);
        for (const auto& r : rows) {
            std::vector<std::string> cells_row = {r.workload};
            for (const auto& pf : prefetchers)
                cells_row.push_back(Table::fmt(r.speedup.at(pf)));
            table.addRow(cells_row);
        }
        bench::finish(table, "fig" + tag + "_scurve_" +
                                 std::to_string(cores) + "c");
    };

    // Parse and validate the workload= override once; it replaces both
    // figures' default lists (validation instantiates every entry, so
    // a trace: spec should not be loaded twice just to re-check it).
    const bool overridden = !opt.cli.getString("workload", "").empty();
    std::vector<std::string> override_names;
    if (overridden)
        override_names = bench::workloadsOrDefault(opt, {});

    std::vector<std::string> all_names;
    for (const auto& w : wl::allWorkloads())
        all_names.push_back(w.name);
    build(overridden ? override_names : all_names, 1, "17");
    build(overridden ? override_names : bench::representativeWorkloads(),
          4, "18");

    bench::emitRunSeries(sopt.series_out, "workload,prefetcher,cores",
                         cells);
    return 0;
}
