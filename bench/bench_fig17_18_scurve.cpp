/**
 * @file
 * Reproduces Fig. 17/18: the per-trace performance line graphs (s-curve)
 * of SPP, Bingo, MLOP and Pythia — single-core over the full catalog and
 * four-core over the representative set — sorted by Pythia's speedup.
 *
 * Paper shape: Pythia improves on the baseline almost everywhere, with
 * the largest wins on irregular traces and the known loss cases on
 * heavy streamers (where Bingo's full-region prefetch is unbeatable).
 */
#include <algorithm>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};

    harness::Runner runner;

    struct Row
    {
        std::string workload;
        std::map<std::string, double> speedup;
    };

    auto build = [&](const std::vector<std::string>& workloads,
                     std::uint32_t cores, const std::string& tag) {
        std::vector<Row> rows(workloads.size());
        harness::Sweep sweep;
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            rows[i].workload = workloads[i];
            for (const auto& pf : prefetchers) {
                harness::ExperimentBuilder exp =
                    bench::exp1c(workloads[i], pf, opt.sim_scale)
                        .cores(cores);
                if (cores > 1)
                    exp.scaleWindows(0.5);
                sweep.add(exp,
                          [&rows, i,
                           pf](const harness::Runner::Outcome& o) {
                              rows[i].speedup[pf] = o.metrics.speedup;
                          });
            }
        }
        bench::runSweep(sweep, runner, opt);
        std::sort(rows.begin(), rows.end(),
                  [](const Row& a, const Row& b) {
                      return a.speedup.at("pythia") <
                             b.speedup.at("pythia");
                  });
        Table table("Fig." + tag + " — per-trace speedups (" +
                    std::to_string(cores) + "C, sorted by Pythia)");
        std::vector<std::string> header = {"workload"};
        for (const auto& pf : prefetchers)
            header.push_back(pf);
        table.setHeader(header);
        for (const auto& r : rows) {
            std::vector<std::string> cells = {r.workload};
            for (const auto& pf : prefetchers)
                cells.push_back(Table::fmt(r.speedup.at(pf)));
            table.addRow(cells);
        }
        bench::finish(table, "fig" + tag + "_scurve_" +
                                 std::to_string(cores) + "c");
    };

    std::vector<std::string> all_names;
    for (const auto& w : wl::allWorkloads())
        all_names.push_back(w.name);
    build(all_names, 1, "17");
    build(bench::representativeWorkloads(), 4, "18");
    return 0;
}
