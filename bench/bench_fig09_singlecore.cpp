/**
 * @file
 * Reproduces Fig. 9: (a) per-suite geomean speedup of SPP, Bingo, MLOP
 * and Pythia in the single-core system across the whole catalog, and
 * (b) Pythia against the cumulative prefetcher stacks
 * St, St+SPP, +Bingo, +DSPatch, +MLOP.
 *
 * Paper shape: Pythia leads the overall geomean and beats the full
 * combination while using less than half its storage.
 */
#include "bench_common.hpp"

#include "sim/prefetcher_registry.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::workloadFlagKeys());
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};

    // Suite-grouped rows by default; a workload= override collapses to
    // one "custom" group (and drives part (b) over the same specs).
    const auto groups = bench::suiteGroupsOrCustom(opt);

    harness::Runner runner;
    Table a("Fig.9(a) — per-suite geomean speedup (1C)");
    std::vector<std::string> header = {"suite"};
    for (const auto& pf : prefetchers)
        header.push_back(pf);
    a.setHeader(header);

    std::map<std::string, std::vector<double>> overall;
    harness::Sweep sweep_a;
    for (const auto& [suite, names] : groups) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{suite});
        for (const auto& pf : prefetchers) {
            auto speedups = std::make_shared<std::vector<double>>();
            for (const auto& w : names)
                sweep_a.add(
                    bench::exp1c(w, pf, opt.sim_scale),
                    [&, speedups, pf](const harness::Runner::Outcome& o) {
                        speedups->push_back(
                            std::max(1e-6, o.metrics.speedup));
                        overall[pf].push_back(speedups->back());
                    });
            sweep_a.then([row, speedups] {
                row->push_back(Table::fmt(geomean(*speedups)));
            });
        }
        sweep_a.then([&a, row] { a.addRow(*row); });
    }
    bench::runSweep(sweep_a, runner, opt);
    std::vector<std::string> row = {"GEOMEAN"};
    for (const auto& pf : prefetchers)
        row.push_back(Table::fmt(geomean(overall[pf])));
    a.addRow(row);
    bench::finish(a, "fig09a_singlecore");

    Table b("Fig.9(b) — Pythia vs cumulative prefetcher stacks (1C)");
    b.setHeader({"prefetcher", "geomean_speedup", "storage_kb"});
    // Part (b) sweeps the flattened groups: the whole catalog (group
    // order matches allWorkloads()) or the already-validated override.
    std::vector<std::string> all_names;
    for (const auto& [suite, names] : groups)
        all_names.insert(all_names.end(), names.begin(), names.end());
    harness::Sweep sweep_b;
    for (const char* pf : {"st", "st_s", "st_s_b", "st_s_b_d",
                           "st_s_b_d_m", "pythia"}) {
        bench::addGeomeanSpeedup(
            sweep_b, all_names, pf, {}, opt.sim_scale, [&b, pf](double g) {
                const auto built = sim::makePrefetcher(pf);
                b.addRow({pf, Table::fmt(g),
                          Table::fmt(built->storageBytes() / 1024.0, 1)});
            });
    }
    bench::runSweep(sweep_b, runner, opt);
    bench::finish(b, "fig09b_combinations");
    return 0;
}
