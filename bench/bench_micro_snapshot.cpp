/**
 * @file
 * Microbenchmark of the snapshot subsystem (DESIGN.md §9).
 *
 * Three parts, all landing in the pythia-perf-v1 artifact
 * (--perf-out=BENCH_snapshot.json) as one sweep row each:
 *
 *  1. save — snapshotTo() wall time of a warmed single-core Pythia
 *     session ("experiments" counts save operations, so sims_per_sec
 *     reads as saves/sec).
 *  2. load — resumeFrom() wall time of the same snapshot (machine
 *     construction + restore + workload fast-forward replay).
 *  3. cold and warm — the same small sweep executed twice against one
 *     warm-state cache directory: the first run populates it, the
 *     second restores from it. The warm-vs-cold wall-time ratio is
 *     the headline number this bench tracks ("warm_vs_cold" below);
 *     the two sweep rows preserve both sides in the artifact.
 *
 * Warm runs are golden-gated elsewhere (test_snapshot_golden.cpp) to
 * be bit-identical to cold runs; this bench only measures how much
 * wall time the cache saves.
 */
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "harness/session.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/** Fold a hand-timed operation loop into the perf artifact as one
 *  sweep row: "experiments" = operations, sims_per_sec = ops/sec. */
void
addOpsRow(pythia::bench::BenchOptions& opt, std::size_t ops,
          double seconds, const std::vector<double>& per_op)
{
    pythia::harness::SweepReport report;
    report.experiments = ops;
    report.jobs = 1;
    report.seconds = seconds;
    report.job_seconds = per_op;
    opt.perf.addSweep(report);
    if (!opt.perf_out.empty() && !opt.perf.writeTo(opt.perf_out))
        std::fprintf(stderr, "[perf] cannot write %s\n",
                     opt.perf_out.c_str());
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace pythia;
    namespace fs = std::filesystem;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    if (!opt.cli.has("jobs"))
        opt.jobs = 1; // wall-time ratios want one worker by default

    const std::string dir = opt.snapshot_dir.empty()
                                ? std::string("snapshot_bench_cache")
                                : opt.snapshot_dir;
    fs::remove_all(dir);
    fs::create_directories(dir);
    const std::string snap_path =
        (fs::path(dir) / "bench_session.snap").string();

    // ---- part 1: save/load wall time -----------------------------------
    const harness::ExperimentSpec spec =
        bench::exp1c("462.libquantum-1343B", "pythia", opt.sim_scale)
            .spec();
    harness::SimSession warmed(spec);
    warmed.runWarmup();

    const std::size_t ops =
        static_cast<std::size_t>(20 * std::max(1.0, opt.sim_scale));
    std::vector<double> save_s, load_s;
    const auto t_save = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
        const auto t0 = Clock::now();
        warmed.snapshotTo(snap_path);
        save_s.push_back(secondsSince(t0));
    }
    const double save_total = secondsSince(t_save);

    const auto t_load = Clock::now();
    for (std::size_t i = 0; i < ops; ++i) {
        const auto t0 = Clock::now();
        harness::SimSession resumed =
            harness::SimSession::resumeFrom(spec, snap_path);
        load_s.push_back(secondsSince(t0));
        (void)resumed;
    }
    const double load_total = secondsSince(t_load);

    const auto snap_bytes = fs::file_size(snap_path);
    std::printf("snapshot save/load (%zu ops, %llu-byte file):\n", ops,
                static_cast<unsigned long long>(snap_bytes));
    std::printf("  save   %8.3f ms/op\n",
                save_total / static_cast<double>(ops) * 1e3);
    std::printf("  load   %8.3f ms/op  (construct + restore + replay)\n",
                load_total / static_cast<double>(ops) * 1e3);
    addOpsRow(opt, ops, save_total, save_s);
    addOpsRow(opt, ops, load_total, load_s);

    // ---- part 2: warm-vs-cold sweep ------------------------------------
    // The representative single-core cross-section, cold then warm
    // against the same cache directory. Two Runners so the second pays
    // session opening again (baseline futures don't carry over) but
    // skips every warmup via the on-disk cache.
    const std::vector<std::pair<std::string, std::string>> cells = {
        {"462.libquantum-1343B", "pythia"},
        {"459.GemsFDTD-765B", "spp"},
        {"482.sphinx3-417B", "bingo"},
        {"429.mcf-184B", "stride"},
        {"Ligra-PageRank", "pythia"},
        {"Ligra-CC", "stride"},
    };
    opt.snapshot_dir = dir; // route runSweep's runners at the cache

    Table table("snapshot warm-state cache (bench-standard windows)");
    table.setHeader({"phase", "seconds", "sims/sec", "warm hits"});
    double cold_s = 0.0, warm_s = 0.0;
    for (const bool warm : {false, true}) {
        harness::Runner runner;
        harness::Sweep sweep;
        for (const auto& [w, pf] : cells)
            sweep.add(bench::exp1c(w, pf, opt.sim_scale),
                      [](const harness::Runner::Outcome&) {});
        bench::runSweep(sweep, runner, opt);
        const auto& row = opt.perf.sweeps().back();
        (warm ? warm_s : cold_s) = row.seconds;
        table.addRow({warm ? "warm" : "cold", Table::fmt(row.seconds),
                      Table::fmt(row.sims_per_sec),
                      std::to_string(runner.warmHits())});
    }
    std::printf("warm_vs_cold: %.2fx (cold %.3fs, warm %.3fs)\n",
                warm_s > 0.0 ? cold_s / warm_s : 0.0, cold_s, warm_s);
    bench::finish(table, "micro_snapshot");

    fs::remove_all(dir);
    return 0;
}
