/**
 * @file
 * Reproduces Fig. 8(a): geomean speedup of SPP, Bingo, MLOP, SPP+PPF and
 * Pythia as the core count scales from 1 to 12, with the paper's DRAM
 * channel scaling (1-2C: one channel, 4-6C: two, 8-12C: four).
 *
 * Paper shape: Pythia's margin over the overpredicting baselines grows
 * with core count (shared-bandwidth contention).
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const std::vector<std::uint32_t> core_counts = {1, 2, 4, 8, 12};
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "spp_ppf", "pythia"};
    // Multi-core sweeps are expensive; use the representative set.
    const auto& workloads = bench::representativeWorkloads();

    harness::Runner runner;
    Table table("Fig.8(a) — geomean speedup vs core count");
    std::vector<std::string> header = {"cores"};
    for (const auto& pf : prefetchers)
        header.push_back(pf);
    table.setHeader(header);

    harness::Sweep sweep;
    for (std::uint32_t cores : core_counts) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{std::to_string(cores)});
        for (const auto& pf : prefetchers)
            bench::addGeomeanSpeedup(
                sweep, workloads, pf,
                [cores](harness::ExperimentBuilder& e) {
                    e.cores(cores);
                    // Keep total simulated work bounded.
                    if (cores > 2)
                        e.scaleWindows(1.0 / 3);
                },
                opt.sim_scale,
                [row](double g) { row->push_back(Table::fmt(g)); });
        sweep.then([&table, row] { table.addRow(*row); });
    }
    bench::runSweep(sweep, runner, opt);
    bench::finish(table, "fig08a_cores");
    return 0;
}
