/**
 * @file
 * Reproduces Fig. 20 (Appendix B.3): Pythia's sensitivity to the
 * exploration rate (epsilon) and the learning rate (alpha).
 *
 * Paper shape: performance collapses as epsilon approaches 1 (the agent
 * acts randomly) and degrades at both extremes of alpha. Note that the
 * optimum sits at larger values than the paper's (alpha=0.0065,
 * eps=0.002) because our simulation windows are ~1000x shorter — the
 * *shape* of both curves is the reproduction target (DESIGN.md §4).
 */
#include "bench_common.hpp"

#include "core/configs.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    const double scale = bench::simScale(argc, argv);
    const auto& workloads = bench::representativeWorkloads();
    harness::Runner runner;

    auto sweep = [&](const std::string& label,
                     const std::vector<double>& values,
                     auto apply) {
        Table table("Fig.20 — sensitivity to " + label);
        table.setHeader({label, "geomean_speedup"});
        for (double v : values) {
            auto cfg = rl::scaledForSimLength(rl::basicPythiaConfig());
            apply(cfg, v);
            std::vector<double> speedups;
            for (const auto& w : workloads) {
                harness::ExperimentSpec spec =
                    bench::spec1c(w, "pythia_custom", scale);
                spec.pythia_cfg = cfg;
                speedups.push_back(std::max(
                    1e-6, runner.evaluate(spec).metrics.speedup));
            }
            table.addRow({Table::fmt(v, 6),
                          Table::fmt(geomean(speedups))});
        }
        bench::finish(table, "fig20_" + label);
    };

    sweep("epsilon", {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1, 1.0},
          [](rl::PythiaConfig& cfg, double v) { cfg.epsilon = v; });
    sweep("alpha", {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 1.0},
          [](rl::PythiaConfig& cfg, double v) { cfg.alpha = v; });
    return 0;
}
