/**
 * @file
 * Reproduces Fig. 20 (Appendix B.3): Pythia's sensitivity to the
 * exploration rate (epsilon) and the learning rate (alpha).
 *
 * Paper shape: performance collapses as epsilon approaches 1 (the agent
 * acts randomly) and degrades at both extremes of alpha. Note that the
 * optimum sits at larger values than the paper's (alpha=0.0065,
 * eps=0.002) because our simulation windows are ~1000x shorter — the
 * *shape* of both curves is the reproduction target (DESIGN.md §4).
 */
#include <cstdio>

#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::workloadFlagKeys());
    const std::vector<std::string> workloads =
        bench::workloadsOrDefault(opt, bench::representativeWorkloads());
    harness::Runner runner;

    // Each hyperparameter value rides a parameterized registry spec
    // ("pythia:alpha=0.01") — the whole sweep needs no config objects.
    auto sensitivity = [&](const std::string& key,
                           const std::vector<double>& values) {
        Table table("Fig.20 — sensitivity to " + key);
        table.setHeader({key, "geomean_speedup"});
        harness::Sweep sweep;
        for (double v : values) {
            char value[32];
            std::snprintf(value, sizeof value, "%g", v);
            const std::string spec = "pythia:" + key + "=" + value;
            bench::addGeomeanSpeedup(
                sweep, workloads, spec, {}, opt.sim_scale,
                [&table, v](double g) {
                    table.addRow({Table::fmt(v, 6), Table::fmt(g)});
                });
        }
        bench::runSweep(sweep, runner, opt);
        bench::finish(table, "fig20_" + key);
    };

    sensitivity("epsilon",
                {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1, 1.0});
    sensitivity("alpha",
                {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 0.2, 0.5, 1.0});
    return 0;
}
