/**
 * @file
 * Reproduces Fig. 21 (Appendix B.4): Pythia versus the hardware-context
 * contextual-bandit prefetcher CP-HW, per suite, single- and four-core.
 *
 * Paper shape: far-sighted SARSA-based Pythia beats the myopic bandit
 * in both configurations.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    harness::Runner runner;

    for (std::uint32_t cores : {1u, 4u}) {
        Table table("Fig.21 — CP-HW vs Pythia (" +
                    std::to_string(cores) + "C)");
        table.setHeader({"suite", "cp_hw", "pythia"});
        auto g_cp = std::make_shared<std::vector<double>>();
        auto g_py = std::make_shared<std::vector<double>>();
        harness::Sweep sweep;
        for (const auto& suite : wl::suiteNames()) {
            std::vector<std::string> names;
            for (const auto* w : wl::suiteWorkloads(suite))
                names.push_back(w->name);
            auto tweak = [cores](harness::ExperimentBuilder& e) {
                e.cores(cores);
                if (cores > 1)
                    e.scaleWindows(0.5);
            };
            // 4C: use the first two workloads per suite to bound cost.
            if (cores > 1 && names.size() > 2)
                names.resize(2);
            auto cp = std::make_shared<double>(0.0);
            auto py = std::make_shared<double>(0.0);
            bench::addGeomeanSpeedup(sweep, names, "cp_hw", tweak,
                                     opt.sim_scale,
                                     [cp](double g) { *cp = g; });
            bench::addGeomeanSpeedup(sweep, names, "pythia", tweak,
                                     opt.sim_scale,
                                     [py](double g) { *py = g; });
            sweep.then([&table, g_cp, g_py, cp, py, suite] {
                g_cp->push_back(*cp);
                g_py->push_back(*py);
                table.addRow({suite, Table::fmt(*cp), Table::fmt(*py)});
            });
        }
        bench::runSweep(sweep, runner, opt);
        table.addRow({"GEOMEAN", Table::fmt(geomean(*g_cp)),
                      Table::fmt(geomean(*g_py))});
        bench::finish(table,
                      "fig21_cphw_" + std::to_string(cores) + "c");
    }
    return 0;
}
