/**
 * @file
 * Reproduces Fig. 11: performance of the memory-bandwidth-oblivious
 * Pythia (both R_IN and both R_NP levels collapsed) normalized to basic
 * Pythia across the DRAM bandwidth sweep.
 *
 * Paper shape: the oblivious variant loses several percent at low MTPS
 * and converges to parity as bandwidth becomes plentiful.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const std::vector<std::uint32_t> mtps_points = {150, 300,  600, 1200,
                                                    2400, 4800, 9600};
    const auto& workloads = bench::representativeWorkloads();

    harness::Runner runner;
    Table table("Fig.11 — BW-oblivious Pythia normalized to basic");
    table.setHeader({"mtps", "basic", "bw_oblivious", "delta"});
    harness::Sweep sweep;
    for (std::uint32_t mtps : mtps_points) {
        auto set_mtps = [mtps](harness::ExperimentBuilder& e) {
            e.mtps(mtps);
        };
        auto basic = std::make_shared<double>(0.0);
        auto oblivious = std::make_shared<double>(0.0);
        bench::addGeomeanSpeedup(sweep, workloads, "pythia", set_mtps,
                                 opt.sim_scale,
                                 [basic](double g) { *basic = g; });
        bench::addGeomeanSpeedup(sweep, workloads, "pythia_bwobl",
                                 set_mtps, opt.sim_scale,
                                 [oblivious](double g) {
                                     *oblivious = g;
                                 });
        sweep.then([&table, mtps, basic, oblivious] {
            table.addRow({std::to_string(mtps), Table::fmt(*basic),
                          Table::fmt(*oblivious),
                          Table::pct(*oblivious / *basic - 1.0)});
        });
    }
    bench::runSweep(sweep, runner, opt);
    bench::finish(table, "fig11_bwablation");
    return 0;
}
