/**
 * @file
 * Shared plumbing for the per-figure/table benchmark binaries.
 *
 * Every bench regenerates one artifact of the paper's evaluation: it
 * declares the sweep the figure reports as a harness::Sweep, executes it
 * on a ParallelRunner worker pool, prints the series as an aligned table
 * and writes a CSV next to the working directory. Simulation windows are
 * scaled-down analogues of the paper's 100M/500M windows (see DESIGN.md
 * §4); pass sim_scale=<f> on the command line to grow or shrink them and
 * jobs=<n> to set the worker count (default: hardware concurrency).
 * Unknown or misspelled key=value arguments are rejected with a
 * "did you mean" hint.
 *
 * Sharded execution (DESIGN.md §11): workers=<n> runs the sweeps on n
 * worker *processes* through harness::ShardCoordinator instead of the
 * in-process pool — byte-identical tables and CSVs, by the determinism
 * rule — and journal=<path> adds a durable pythia-journal-v1 job
 * journal so a killed bench resumes from its last completed job (a
 * multi-sweep bench suffixes the path with .s1, .s2, ... for its
 * second and later sweeps).
 *
 * Perf tracking (DESIGN.md §7): --perf-out=<path> (or perf_out=<path>)
 * makes the bench write a pythia-perf-v1 JSON artifact covering every
 * sweep it ran; quiet=1 suppresses the per-sweep stderr throughput line
 * so redirecting both streams yields clean CSV.
 *
 * Profiling (DESIGN.md §10): profile=1 wraps the bench's measured
 * region in a harness::ScopedProfiler — gperftools CPU profile when
 * libprofiler is linked/preloaded, perf-marker stderr lines otherwise.
 *
 * Warm-state caching (DESIGN.md §9): snapshot_dir=<dir> persists every
 * post-warmup machine state as a pythia-snap-v1 file in <dir> and
 * restores it on later runs with the same configuration fingerprint,
 * skipping the warmup simulation entirely. Restored runs are
 * bit-identical to cold ones.
 */
#pragma once

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "harness/perf.hpp"
#include "harness/profiler.hpp"
#include "harness/shard.hpp"
#include "harness/sweep.hpp"
#include "harness/timeseries.hpp"
#include "workloads/suites.hpp"

namespace pythia::bench {

/** Default measurement windows (instructions per core). */
inline constexpr std::uint64_t kWarmup = 60'000;
inline constexpr std::uint64_t kSim = 150'000;

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    double sim_scale = 1.0; ///< multiplies both simulation windows
    unsigned jobs = 0;      ///< worker threads; 0 = hardware concurrency
    unsigned workers = 0;   ///< worker processes; 0 = in-process pool
    std::string journal;    ///< shard journal path; empty = no journal
    bool quiet = false;     ///< suppress the stderr throughput line
    bool profile = false;   ///< profile=1: profile the measured region
    std::string perf_out;   ///< perf JSON path; empty = no artifact
    std::string snapshot_dir; ///< warm-state cache dir; empty = off
    Config cli;             ///< full parse, for bench-specific keys
    harness::PerfReport perf; ///< accumulated by runSweep()
    std::size_t sweeps_run = 0; ///< runSweep() calls so far (journal names)
};

/**
 * Parse the bench command line strictly: sim_scale=<f>, jobs=<n>,
 * quiet=<0|1> and perf_out=<path> (alias --perf-out=<path>) are always
 * accepted, @p extra_keys adds bench-specific ones. Malformed tokens
 * and unknown keys terminate the bench with a hint (a typo like
 * "sim_scal=2" must not silently run the defaults).
 */
inline BenchOptions
parseBenchArgs(int argc, char** argv,
               const std::vector<std::string>& extra_keys = {})
{
    std::vector<std::string> allowed = {"sim_scale", "jobs", "workers",
                                        "journal",   "quiet", "perf_out",
                                        "snapshot_dir", "profile"};
    allowed.insert(allowed.end(), extra_keys.begin(), extra_keys.end());
    BenchOptions opt;
    {
        // Bench name for the perf artifact: basename of the binary.
        std::string name = argc > 0 && argv[0] ? argv[0] : "bench";
        const auto slash = name.find_last_of('/');
        if (slash != std::string::npos)
            name = name.substr(slash + 1);
        opt.perf.setBench(name);
    }
    // Translate the --perf-out=<path> alias into perf_out=<path> so the
    // strict parser sees only key=value tokens.
    std::vector<std::string> tokens;
    tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc : 1));
    tokens.emplace_back(argc > 0 && argv[0] ? argv[0] : "bench");
    for (int i = 1; i < argc; ++i) {
        std::string tok = argv[i];
        if (tok.rfind("--perf-out=", 0) == 0)
            tok = "perf_out=" + tok.substr(sizeof("--perf-out=") - 1);
        tokens.push_back(std::move(tok));
    }
    std::vector<const char*> cargv;
    cargv.reserve(tokens.size());
    for (const auto& t : tokens)
        cargv.push_back(t.c_str());
    try {
        opt.cli.parseArgsStrict(static_cast<int>(cargv.size()),
                                cargv.data(), allowed);
        opt.sim_scale = opt.cli.getDouble("sim_scale", 1.0);
        const std::int64_t jobs = opt.cli.getInt("jobs", 0);
        if (jobs < 0)
            throw std::invalid_argument("jobs must be >= 0 (0 = auto)");
        opt.jobs = static_cast<unsigned>(jobs);
        const std::int64_t workers = opt.cli.getInt("workers", 0);
        if (workers < 0)
            throw std::invalid_argument(
                "workers must be >= 0 (0 = in-process pool)");
        opt.workers = static_cast<unsigned>(workers);
        if (opt.workers > 0 && opt.jobs > 1)
            throw std::invalid_argument(
                "workers= (worker processes) and jobs=" +
                std::to_string(opt.jobs) +
                " (in-process pool) are mutually exclusive — sharded "
                "execution runs one runner per worker process");
        opt.journal = opt.cli.getString("journal", "");
        if (!opt.journal.empty() && opt.workers == 0)
            throw std::invalid_argument(
                "journal= requires workers=<n> (sharded execution)");
        opt.quiet = opt.cli.getBool("quiet", false);
        opt.profile = opt.cli.getBool("profile", false);
        opt.perf_out = opt.cli.getString("perf_out", "");
        opt.snapshot_dir = opt.cli.getString("snapshot_dir", "");
    } catch (const std::exception& e) {
        std::cerr << (argc > 0 ? argv[0] : "bench") << ": " << e.what()
                  << "\n";
        std::exit(2);
    }
    return opt;
}

/**
 * Execute @p sweep on @p opt.jobs workers (replaying callbacks in
 * declaration order) and return the outcomes in job order. Folds the
 * sweep's timing into @p opt.perf and, when perf_out is set, rewrites
 * the JSON artifact after every sweep so the last write of a
 * multi-sweep bench always holds the complete picture.
 *
 * workers=<n> swaps the in-process pool for a ShardCoordinator over n
 * worker subprocesses; by the determinism rule the outcomes, tables and
 * CSVs are byte-identical either way. journal= makes the sharded run
 * resumable after a crash — each sweep of a multi-sweep bench journals
 * to its own file (.s1, .s2, ... suffixes after the first).
 */
inline std::vector<harness::Runner::Outcome>
runSweep(harness::Sweep& sweep, harness::Runner& runner,
         BenchOptions& opt)
{
    if (!opt.snapshot_dir.empty() && runner.snapshotDir().empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt.snapshot_dir, ec);
        if (ec)
            std::cerr << "[snapshot] cannot create " << opt.snapshot_dir
                      << ": " << ec.message() << " (running cold)\n";
        else
            runner.setSnapshotDir(opt.snapshot_dir);
    }
    if (opt.workers > 0) {
        harness::ShardOptions shard;
        shard.workers = opt.workers;
        shard.snapshot_dir = opt.snapshot_dir;
        if (!opt.journal.empty())
            shard.journal_path =
                opt.sweeps_run == 0
                    ? opt.journal
                    : opt.journal + ".s" + std::to_string(opt.sweeps_run);
        shard.report_os = opt.quiet ? nullptr : &std::cerr;
        harness::ShardCoordinator coordinator(shard);
        auto outcomes = coordinator.run(runner, sweep);
        ++opt.sweeps_run;
        opt.perf.setJobs(opt.jobs == 0 ? 1 : opt.jobs);
        opt.perf.setWorkers(opt.workers);
        opt.perf.addSweep(coordinator.lastReport().sweep);
        if (!opt.perf_out.empty() && !opt.perf.writeTo(opt.perf_out))
            std::cerr << "[perf] cannot write " << opt.perf_out << "\n";
        return outcomes;
    }
    harness::ParallelRunner pool(opt.jobs);
    if (opt.quiet)
        pool.reportTo(nullptr);
    auto outcomes = pool.run(runner, sweep);
    ++opt.sweeps_run;
    opt.perf.setJobs(pool.jobs());
    opt.perf.addSweep(pool.lastReport());
    if (!opt.perf_out.empty() && !opt.perf.writeTo(opt.perf_out))
        std::cerr << "[perf] cannot write " << opt.perf_out << "\n";
    return outcomes;
}

/** Strict-CLI key of the workload-override flag:
 *  workload=<spec>[;<spec>...] replaces a bench's default workload
 *  list. Each entry is a workload spec (workloads/suites.hpp) —
 *  catalog name or registry spec string; ';' separates entries because
 *  ',' belongs to spec parameters. */
inline const std::vector<std::string>&
workloadFlagKeys()
{
    static const std::vector<std::string> keys = {"workload"};
    return keys;
}

/** Concatenate strict-CLI key lists (for benches combining the
 *  workload flag with e.g. sessionFlagKeys()). */
inline std::vector<std::string>
joinFlagKeys(const std::vector<std::string>& a,
             const std::vector<std::string>& b)
{
    std::vector<std::string> out = a;
    out.insert(out.end(), b.begin(), b.end());
    return out;
}

/**
 * The bench's workload list: the parsed workload= override when given,
 * else @p defaults. Every override entry is validated up front by
 * instantiating it once, so a typo terminates the bench with the
 * registry's "did you mean" diagnostics instead of failing mid-sweep.
 */
inline std::vector<std::string>
workloadsOrDefault(const BenchOptions& opt,
                   std::vector<std::string> defaults)
{
    const std::string value = opt.cli.getString("workload", "");
    if (value.empty())
        return defaults;
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= value.size(); ++i) {
        if (i < value.size() && value[i] != ';')
            continue;
        std::string w = value.substr(start, i - start);
        start = i + 1;
        const auto b = w.find_first_not_of(" \t");
        const auto e = w.find_last_not_of(" \t");
        if (b == std::string::npos)
            continue;
        out.push_back(w.substr(b, e - b + 1));
    }
    if (out.empty()) {
        std::cerr << "bench: workload= needs at least one spec\n";
        std::exit(2);
    }
    for (const auto& w : out) {
        try {
            (void)wl::makeWorkload(w);
        } catch (const std::exception& ex) {
            std::cerr << "bench: workload=: " << ex.what() << "\n";
            std::exit(2);
        }
    }
    return out;
}

/** Suite-grouped catalog names (suiteNames() x suiteWorkloads()) for
 *  the per-suite benches, or — when workload= is set — a single
 *  "custom" group holding exactly the override specs. */
inline std::vector<std::pair<std::string, std::vector<std::string>>>
suiteGroupsOrCustom(const BenchOptions& opt)
{
    std::vector<std::pair<std::string, std::vector<std::string>>> groups;
    if (!opt.cli.getString("workload", "").empty()) {
        groups.emplace_back("custom", workloadsOrDefault(opt, {}));
        return groups;
    }
    for (const auto& suite : wl::suiteNames()) {
        std::vector<std::string> names;
        for (const auto* w : wl::suiteWorkloads(suite))
            names.push_back(w->name);
        groups.emplace_back(suite, std::move(names));
    }
    return groups;
}

/** Strict-CLI keys of the streaming-session benches: windows=<n>
 *  (uniform window count), window_instrs=<n> (uniform window stride)
 *  and series_out=<path> (combined per-window CSV). */
inline const std::vector<std::string>&
sessionFlagKeys()
{
    static const std::vector<std::string> keys = {"windows",
                                                  "window_instrs",
                                                  "series_out"};
    return keys;
}

/** Parsed session/window flags (0 / empty = unset). */
struct SessionOptions
{
    std::uint64_t windows = 0;       ///< uniform window count
    std::uint64_t window_instrs = 0; ///< uniform window stride (instrs)
    std::string series_out;          ///< combined per-window CSV path
};

/** Read the sessionFlagKeys() values out of an already-parsed bench
 *  command line; exits with status 2 on malformed values, like
 *  parseBenchArgs(). */
inline SessionOptions
parseSessionFlags(const BenchOptions& opt)
{
    SessionOptions s;
    try {
        const std::int64_t windows = opt.cli.getInt("windows", 0);
        const std::int64_t stride = opt.cli.getInt("window_instrs", 0);
        if (windows < 0 || stride < 0)
            throw std::invalid_argument(
                "windows/window_instrs must be >= 0");
        s.windows = static_cast<std::uint64_t>(windows);
        s.window_instrs = static_cast<std::uint64_t>(stride);
        s.series_out = opt.cli.getString("series_out", "");
    } catch (const std::exception& e) {
        std::cerr << "bench: " << e.what() << "\n";
        std::exit(2);
    }
    return s;
}

/**
 * Window boundaries for a streamed session of @p total measured
 * instructions: the figure-dictated @p required boundaries (e.g.
 * fig23's warmup points) merged with the uniform split the windows= /
 * window_instrs= flags request, deduplicated, clipped to (0, total)
 * and always ending at @p total.
 */
inline std::vector<std::uint64_t>
windowEnds(std::uint64_t total, const SessionOptions& s,
           const std::vector<std::uint64_t>& required = {})
{
    std::set<std::uint64_t> ends(required.begin(), required.end());
    if (s.windows > 0) {
        const std::uint64_t step =
            std::max<std::uint64_t>(1, total / s.windows);
        for (std::uint64_t e = step; e < total; e += step)
            ends.insert(e);
    }
    if (s.window_instrs > 0)
        for (std::uint64_t e = s.window_instrs; e < total;
             e += s.window_instrs)
            ends.insert(e);
    std::vector<std::uint64_t> out;
    for (std::uint64_t e : ends)
        if (e > 0 && e < total)
            out.push_back(e);
    out.push_back(total);
    return out;
}

/** Write several labeled TimeSeries as one CSV: the @p label_header
 *  columns (each series' label is emitted verbatim as the row prefix)
 *  followed by the TimeSeries columns. */
inline bool
writeLabeledSeriesCsv(
    const std::string& path, const std::string& label_header,
    const std::vector<std::pair<std::string, const harness::TimeSeries*>>&
        series)
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << label_header << "," << harness::TimeSeries::csvHeader() << "\n";
    for (const auto& [label, ts] : series)
        for (const auto& w : ts->samples())
            f << label << "," << harness::TimeSeries::csvRow(w) << "\n";
    return static_cast<bool>(f);
}

/** A streamed cell of a session bench: its series_out label and the
 *  WindowedOutcome slot its sweep task fills. */
using SessionCell =
    std::pair<std::string, std::shared_ptr<harness::Runner::WindowedOutcome>>;

/** Emit every cell's prefetched-run series as one labeled CSV at
 *  @p path (no-op when empty); prints the outcome like finish(). */
inline void
emitRunSeries(const std::string& path, const std::string& label_header,
              const std::vector<SessionCell>& cells)
{
    if (path.empty())
        return;
    std::vector<std::pair<std::string, const harness::TimeSeries*>>
        labeled;
    labeled.reserve(cells.size());
    for (const auto& [label, cell] : cells)
        labeled.emplace_back(label, &cell->run);
    if (writeLabeledSeriesCsv(path, label_header, labeled))
        std::cout << "[series written: " << path << "]\n";
    else
        std::cerr << "[series] cannot write " << path << "\n";
}

/** Single-core experiment with the bench-standard windows; @p pf is a
 *  registry spec string. Tweak further with the fluent setters. */
inline harness::ExperimentBuilder
exp1c(const std::string& workload, const std::string& pf,
      double scale = 1.0)
{
    return harness::Experiment(workload)
        .l2(pf)
        .warmup(static_cast<std::uint64_t>(kWarmup * scale))
        .measure(static_cast<std::uint64_t>(kSim * scale));
}

/** A representative cross-section of the catalog (one workload per
 *  pattern class per suite) used by the expensive multi-config sweeps. */
inline const std::vector<std::string>&
representativeWorkloads()
{
    static const std::vector<std::string> w = {
        "462.libquantum-1343B", // SPEC06 stream
        "459.GemsFDTD-765B",    // SPEC06 delta chain
        "482.sphinx3-417B",     // SPEC06 spatial
        "429.mcf-184B",         // SPEC06 irregular
        "PARSEC-Canneal",       // PARSEC spatial
        "Ligra-PageRank",       // Ligra graph
        "Ligra-CC",             // Ligra graph (bandwidth-hungry)
        "Cloudsuite-Cassandra", // Cloudsuite phase mix
    };
    return w;
}

/**
 * Declare the jobs for the geomean speedup of @p pf over @p workloads
 * into @p sweep; @p tweak customizes each experiment through the fluent
 * builder and @p done receives the geomean during the ordered replay,
 * after the group's last job. The sweep-engine analogue of the old
 * serial geomeanSpeedup() loop: cells of one table row can now all be
 * in flight at once.
 */
inline void
addGeomeanSpeedup(
    harness::Sweep& sweep, const std::vector<std::string>& workloads,
    const std::string& pf,
    const std::function<void(harness::ExperimentBuilder&)>& tweak,
    double scale, std::function<void(double)> done)
{
    auto speedups = std::make_shared<std::vector<double>>();
    speedups->reserve(workloads.size());
    for (const auto& w : workloads) {
        harness::ExperimentBuilder exp = exp1c(w, pf, scale);
        if (tweak)
            tweak(exp);
        sweep.add(exp, [speedups](const harness::Runner::Outcome& o) {
            speedups->push_back(std::max(1e-6, o.metrics.speedup));
        });
    }
    sweep.then([speedups, done = std::move(done)] {
        done(geomean(*speedups));
    });
}

/** Emit the table to stdout and CSV (named after the bench binary). */
inline void
finish(Table& table, const std::string& csv_name)
{
    table.print();
    const std::string path = csv_name + ".csv";
    if (table.writeCsv(path))
        std::cout << "[csv written: " << path << "]\n";
}

} // namespace pythia::bench
