/**
 * @file
 * Shared plumbing for the per-figure/table benchmark binaries.
 *
 * Every bench regenerates one artifact of the paper's evaluation: it runs
 * the same sweep the figure reports, prints the series as an aligned
 * table and writes a CSV next to the working directory. Simulation
 * windows are scaled-down analogues of the paper's 100M/500M windows
 * (see DESIGN.md §4); pass sim_scale=<f> on the command line to grow or
 * shrink them.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/table.hpp"
#include "harness/experiment.hpp"
#include "workloads/suites.hpp"

namespace pythia::bench {

/** Default measurement windows (instructions per core). */
inline constexpr std::uint64_t kWarmup = 60'000;
inline constexpr std::uint64_t kSim = 150'000;

/** Scale factor from the command line (sim_scale=2 doubles windows). */
inline double
simScale(int argc, char** argv)
{
    Config cli;
    cli.parseArgs(argc, argv);
    return cli.getDouble("sim_scale", 1.0);
}

/** Single-core experiment with the bench-standard windows; @p pf is a
 *  registry spec string. Tweak further with the fluent setters. */
inline harness::ExperimentBuilder
exp1c(const std::string& workload, const std::string& pf,
      double scale = 1.0)
{
    return harness::Experiment(workload)
        .l2(pf)
        .warmup(static_cast<std::uint64_t>(kWarmup * scale))
        .measure(static_cast<std::uint64_t>(kSim * scale));
}

/** A representative cross-section of the catalog (one workload per
 *  pattern class per suite) used by the expensive multi-config sweeps. */
inline const std::vector<std::string>&
representativeWorkloads()
{
    static const std::vector<std::string> w = {
        "462.libquantum-1343B", // SPEC06 stream
        "459.GemsFDTD-765B",    // SPEC06 delta chain
        "482.sphinx3-417B",     // SPEC06 spatial
        "429.mcf-184B",         // SPEC06 irregular
        "PARSEC-Canneal",       // PARSEC spatial
        "Ligra-PageRank",       // Ligra graph
        "Ligra-CC",             // Ligra graph (bandwidth-hungry)
        "Cloudsuite-Cassandra", // Cloudsuite phase mix
    };
    return w;
}

/** Geomean speedup of @p pf over the baseline across @p workloads;
 *  @p tweak customizes each experiment through the fluent builder. */
inline double
geomeanSpeedup(
    harness::Runner& runner, const std::vector<std::string>& workloads,
    const std::string& pf,
    const std::function<void(harness::ExperimentBuilder&)>& tweak = {},
    double scale = 1.0)
{
    std::vector<double> speedups;
    for (const auto& w : workloads) {
        harness::ExperimentBuilder exp = exp1c(w, pf, scale);
        if (tweak)
            tweak(exp);
        speedups.push_back(
            std::max(1e-6, exp.run(runner).metrics.speedup));
    }
    return geomean(speedups);
}

/** Emit the table to stdout and CSV (named after the bench binary). */
inline void
finish(Table& table, const std::string& csv_name)
{
    table.print();
    const std::string path = csv_name + ".csv";
    if (table.writeCsv(path))
        std::cout << "[csv written: " << path << "]\n";
}

} // namespace pythia::bench
