/**
 * @file
 * Reproduces Fig. 7: per-suite prefetch coverage and overprediction of
 * SPP, Bingo, MLOP and Pythia at the LLC / main-memory boundary in the
 * single-core system, plus the all-suite average.
 *
 * Paper shape: Pythia has coverage at least comparable to the baselines
 * while generating far fewer overpredictions than MLOP and Bingo.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    const double scale = bench::simScale(argc, argv);
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};

    harness::Runner runner;
    Table table("Fig.7 — coverage & overprediction per suite (1C)");
    table.setHeader(
        {"suite", "prefetcher", "coverage", "overprediction"});

    std::map<std::string, std::vector<harness::Metrics>> all;
    for (const auto& suite : wl::suiteNames()) {
        for (const auto& pf : prefetchers) {
            double cov = 0.0, over = 0.0;
            int n = 0;
            for (const auto* w : wl::suiteWorkloads(suite)) {
                const auto o =
                    bench::exp1c(w->name, pf, scale).run(runner);
                cov += o.metrics.coverage;
                over += o.metrics.overprediction;
                all[pf].push_back(o.metrics);
                ++n;
            }
            table.addRow({suite, pf, Table::pct(cov / n),
                          Table::pct(over / n)});
        }
    }
    for (const auto& pf : prefetchers) {
        double cov = 0.0, over = 0.0;
        for (const auto& m : all[pf]) {
            cov += m.coverage;
            over += m.overprediction;
        }
        const double n = static_cast<double>(all[pf].size());
        table.addRow({"AVG", pf, Table::pct(cov / n),
                      Table::pct(over / n)});
    }
    bench::finish(table, "fig07_coverage");
    return 0;
}
