/**
 * @file
 * Reproduces Fig. 7: per-suite prefetch coverage and overprediction of
 * SPP, Bingo, MLOP and Pythia at the LLC / main-memory boundary in the
 * single-core system, plus the all-suite average.
 *
 * Paper shape: Pythia has coverage at least comparable to the baselines
 * while generating far fewer overpredictions than MLOP and Bingo.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::workloadFlagKeys());
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};

    // Suite-grouped rows by default; a workload= override collapses to
    // one "custom" group over exactly the requested specs.
    const auto groups = bench::suiteGroupsOrCustom(opt);

    harness::Runner runner;
    Table table("Fig.7 — coverage & overprediction per suite (1C)");
    table.setHeader(
        {"suite", "prefetcher", "coverage", "overprediction"});

    // One job per (suite, prefetcher, workload); each (suite, pf) group
    // aggregates into its row during the ordered replay.
    std::map<std::string, std::vector<harness::Metrics>> all;
    harness::Sweep sweep;
    for (const auto& [suite, names] : groups) {
        for (const auto& pf : prefetchers) {
            struct Acc
            {
                double cov = 0.0, over = 0.0;
                int n = 0;
            };
            auto acc = std::make_shared<Acc>();
            for (const auto& w : names)
                sweep.add(bench::exp1c(w, pf, opt.sim_scale),
                          [&, acc,
                           pf](const harness::Runner::Outcome& o) {
                              acc->cov += o.metrics.coverage;
                              acc->over += o.metrics.overprediction;
                              all[pf].push_back(o.metrics);
                              ++acc->n;
                          });
            sweep.then([&, acc, suite, pf] {
                table.addRow({suite, pf, Table::pct(acc->cov / acc->n),
                              Table::pct(acc->over / acc->n)});
            });
        }
    }
    bench::runSweep(sweep, runner, opt);
    for (const auto& pf : prefetchers) {
        double cov = 0.0, over = 0.0;
        for (const auto& m : all[pf]) {
            cov += m.coverage;
            over += m.overprediction;
        }
        const double n = static_cast<double>(all[pf].size());
        table.addRow({"AVG", pf, Table::pct(cov / n),
                      Table::pct(over / n)});
    }
    bench::finish(table, "fig07_coverage");
    return 0;
}
