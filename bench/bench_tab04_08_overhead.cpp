/**
 * @file
 * Reproduces Table 4 (Pythia's storage breakdown) and Table 8 (area and
 * power overhead against three Skylake-class reference processors),
 * plus the Table 7 storage comparison of all evaluated prefetchers.
 *
 * Storage is exact structural accounting; area/power are scaled from the
 * paper's published 14nm synthesis anchor (see DESIGN.md §4).
 */
#include "bench_common.hpp"

#include "core/configs.hpp"
#include "core/storage_model.hpp"
#include "sim/prefetcher_registry.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    // Structural accounting, no simulations: parse strictly so typos
    // are rejected, even though sim_scale/jobs have nothing to scale.
    (void)bench::parseBenchArgs(argc, argv);

    const auto cfg = rl::basicPythiaConfig();
    const auto storage = rl::computeStorage(cfg);

    Table t4("Table 4 — Pythia storage breakdown");
    t4.setHeader({"structure", "bytes", "kb"});
    t4.addRow({"QVStore", std::to_string(storage.qvstore_bytes),
               Table::fmt(storage.qvstore_bytes / 1024.0, 1)});
    t4.addRow({"EQ (" + std::to_string(cfg.eq_size) + " x " +
                   std::to_string(storage.eq_entry_bits) + "b)",
               std::to_string(storage.eq_bytes),
               Table::fmt(storage.eq_bytes / 1024.0, 1)});
    t4.addRow({"Total", std::to_string(storage.total_bytes),
               Table::fmt(storage.total_bytes / 1024.0, 1)});
    bench::finish(t4, "tab04_storage");

    Table t7("Table 7 — metadata budgets of evaluated prefetchers");
    t7.setHeader({"prefetcher", "kb"});
    for (const char* pf : {"spp", "bingo", "mlop", "dspatch", "spp_ppf",
                           "pythia"}) {
        const auto built = sim::makePrefetcher(pf);
        t7.addRow({pf, Table::fmt(built->storageBytes() / 1024.0, 1)});
    }
    bench::finish(t7, "tab07_budgets");

    const auto overhead = rl::estimateOverhead(storage);
    Table t8("Table 8 — modelled area & power overhead");
    t8.setHeader({"reference processor", "area_overhead",
                  "power_overhead"});
    std::size_t n = 0;
    const auto* refs = rl::referenceProcessors(&n);
    for (std::size_t i = 0; i < n; ++i) {
        const double area =
            overhead.area_overhead(refs[i].die_area_mm2) * refs[i].cores;
        const double power =
            overhead.power_overhead(refs[i].tdp_w) * refs[i].cores;
        t8.addRow({refs[i].name, Table::pct(area, 2),
                   Table::pct(power, 2)});
    }
    std::cout << "Per-core Pythia: "
              << Table::fmt(overhead.area_mm2, 2) << " mm^2, "
              << Table::fmt(overhead.power_mw, 2) << " mW (modelled)\n";
    bench::finish(t8, "tab08_overhead");
    return 0;
}
