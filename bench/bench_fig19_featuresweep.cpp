/**
 * @file
 * Reproduces Fig. 19 (Appendix B.2): Pythia's performance, coverage and
 * overprediction across one- and two-feature state vectors drawn from
 * the 32-feature exploration space, sorted by speedup — the automated
 * feature-selection experiment of §4.3.1.
 *
 * Paper shape: feature choice moves performance by a couple of percent
 * and coverage correlates positively with speedup.
 */
#include <algorithm>

#include "bench_common.hpp"

#include "core/configs.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    using rl::FeatureSpec;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::workloadFlagKeys());

    // One-feature vectors for every spec, plus two-feature combinations
    // of a representative subset (the full 32x32 sweep is the paper's
    // 44-hour grid job; scale with sim_scale if desired).
    std::vector<std::vector<FeatureSpec>> vectors;
    const auto all = rl::allFeatureSpecs();
    for (const auto& f : all)
        vectors.push_back({f});
    const std::vector<FeatureSpec> pair_pool = {
        {rl::ControlKind::Pc, rl::DataKind::Delta},
        {rl::ControlKind::None, rl::DataKind::Last4Deltas},
        {rl::ControlKind::Pc, rl::DataKind::PageOffset},
        {rl::ControlKind::None, rl::DataKind::Last4Offsets},
        {rl::ControlKind::PcPath3, rl::DataKind::Delta},
        {rl::ControlKind::None, rl::DataKind::OffsetXorDelta},
    };
    for (std::size_t i = 0; i < pair_pool.size(); ++i)
        for (std::size_t j = i + 1; j < pair_pool.size(); ++j)
            vectors.push_back({pair_pool[i], pair_pool[j]});

    const std::vector<std::string> workloads =
        bench::workloadsOrDefault(opt, bench::representativeWorkloads());
    harness::Runner runner;

    struct Row
    {
        std::string name;
        double speedup, coverage, overpred;
    };
    std::vector<Row> rows;
    harness::Sweep sweep;
    for (const auto& features : vectors) {
        struct Acc
        {
            double cov = 0, over = 0;
            std::vector<double> speedups;
        };
        auto acc = std::make_shared<Acc>();
        auto cfg = rl::scaledForSimLength(
            rl::withFeatures(rl::basicPythiaConfig(), features));
        const std::string cfg_name = cfg.name;
        for (const auto& w : workloads)
            sweep.add(bench::exp1c(w, "pythia", opt.sim_scale)
                          .l2Pythia(cfg),
                      [acc](const harness::Runner::Outcome& o) {
                          acc->speedups.push_back(
                              std::max(1e-6, o.metrics.speedup));
                          acc->cov += o.metrics.coverage;
                          acc->over += o.metrics.overprediction;
                      });
        sweep.then([&rows, &workloads, acc, cfg_name] {
            rows.push_back(Row{cfg_name, geomean(acc->speedups),
                               acc->cov / workloads.size(),
                               acc->over / workloads.size()});
        });
    }
    bench::runSweep(sweep, runner, opt);
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
        return a.speedup < b.speedup;
    });

    Table table("Fig.19 — feature-combination sweep (sorted)");
    table.setHeader({"state_vector", "speedup", "coverage", "overpred"});
    for (const auto& r : rows)
        table.addRow({r.name, Table::fmt(r.speedup),
                      Table::pct(r.coverage), Table::pct(r.overpred)});
    bench::finish(table, "fig19_featuresweep");
    return 0;
}
