/**
 * @file
 * Reproduces Fig. 12: performance on *unseen* traces (held-out seeds and
 * parameter draws, the analogue of the CVP-2 traces of §6.4) in the
 * single-core and four-core systems, by category (Crypto/INT/FP/Server).
 *
 * Paper shape: Pythia, tuned on the main catalog only, keeps its edge on
 * traces it never saw during tuning.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::workloadFlagKeys());
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};

    harness::Runner runner;
    for (std::uint32_t cores : {1u, 4u}) {
        Table table("Fig.12 — unseen traces, " + std::to_string(cores) +
                    "-core");
        std::vector<std::string> header = {"category"};
        for (const auto& pf : prefetchers)
            header.push_back(pf);
        table.setHeader(header);

        // Group the unseen catalog by its suite tag; a workload=
        // override collapses to one "custom" category.
        std::map<std::string, std::vector<std::string>> groups;
        if (!opt.cli.getString("workload", "").empty()) {
            groups["custom"] = bench::workloadsOrDefault(opt, {});
        } else {
            for (const auto& w : wl::unseenWorkloads())
                groups[w.suite].push_back(w.name);
        }

        std::map<std::string, std::vector<double>> overall;
        harness::Sweep sweep;
        for (const auto& [category, names] : groups) {
            auto row = std::make_shared<std::vector<std::string>>(
                std::vector<std::string>{category});
            for (const auto& pf : prefetchers)
                bench::addGeomeanSpeedup(
                    sweep, names, pf,
                    [cores](harness::ExperimentBuilder& e) {
                        e.cores(cores);
                        if (cores > 1)
                            e.scaleWindows(0.5);
                    },
                    opt.sim_scale, [&overall, row, pf](double g) {
                        row->push_back(Table::fmt(g));
                        overall[pf].push_back(g);
                    });
            sweep.then([&table, row] { table.addRow(*row); });
        }
        bench::runSweep(sweep, runner, opt);
        std::vector<std::string> row = {"GEOMEAN"};
        for (const auto& pf : prefetchers)
            row.push_back(Table::fmt(geomean(overall[pf])));
        table.addRow(row);
        bench::finish(table, "fig12_unseen_" + std::to_string(cores) +
                                 "c");
    }
    return 0;
}
