/**
 * @file
 * Reproduces Fig. 23 (Appendix B.6): sensitivity of every prefetcher to
 * the number of warmup instructions, from zero warmup upward.
 *
 * Paper shape: Pythia learns online quickly enough that its ranking is
 * stable across warmup lengths, including no warmup at all.
 *
 * Streamed-session implementation: the batch-era bench re-ran every
 * (workload, prefetcher) cell once per warmup point — 6 full
 * simulations per cell. Now ONE SimSession per cell runs from
 * instruction 0 to max_warmup + measure with window boundaries at
 * every warmup point w and every measure end w + measure; the row for
 * warmup w is composed from the per-window deltas spanning
 * [w, w + measure) (harness/session.hpp window algebra). Per-cell sim
 * work no longer scales with the number of warmup points. Equivalence
 * to the batch-era table: the streamed measure window starts at the
 * exact machine state where a batch warmup of w ended, but the batch
 * path let the warmup's superscalar overshoot (at most retire-width-1
 * instrs) extend the measure end, so values match to within that <=3
 * instruction boundary shift — byte-identical at the default
 * sim_scale, and within one 3rd-decimal rounding step elsewhere.
 * Before/after throughput is recorded in BENCH_session.json.
 *
 * Extra flags: windows= / window_instrs= add uniform observation
 * boundaries on top of the required ones (finer series_out
 * granularity; table values are unaffected — window algebra composes
 * across any partition), series_out=<path> dumps every cell's
 * per-window time series as one labeled CSV.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt =
        bench::parseBenchArgs(argc, argv, bench::sessionFlagKeys());
    const bench::SessionOptions sopt = bench::parseSessionFlags(opt);
    const std::vector<std::uint64_t> warmups = {0, 5'000, 15'000, 30'000,
                                                60'000, 120'000};
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};
    const auto& workloads = bench::representativeWorkloads();

    const std::uint64_t measure =
        static_cast<std::uint64_t>(bench::kSim * opt.sim_scale);
    const std::uint64_t total = warmups.back() + measure;
    std::vector<std::uint64_t> required;
    for (std::uint64_t w : warmups) {
        if (w > 0)
            required.push_back(w);
        required.push_back(w + measure);
    }
    const std::vector<std::uint64_t> ends =
        bench::windowEnds(total, sopt, required);

    harness::Runner runner;
    Table table("Fig.23 — sensitivity to warmup length (1C)");
    std::vector<std::string> header = {"warmup_instrs"};
    for (const auto& pf : prefetchers)
        header.push_back(pf);
    table.setHeader(header);

    // speedups[pf][warmup point] -> per-workload speedups, filled in
    // the ordered replay (declaration order = workload order).
    std::vector<std::vector<std::vector<double>>> speedups(
        prefetchers.size(),
        std::vector<std::vector<double>>(warmups.size()));
    std::vector<bench::SessionCell> cells;

    harness::Sweep sweep;
    for (std::size_t p = 0; p < prefetchers.size(); ++p) {
        for (const auto& workload : workloads) {
            const harness::ExperimentSpec spec =
                bench::exp1c(workload, prefetchers[p], opt.sim_scale)
                    .warmup(0)
                    .measure(total)
                    .build();
            auto cell =
                std::make_shared<harness::Runner::WindowedOutcome>();
            sweep.addTask(
                [spec, ends, cell](harness::Runner& r) {
                    *cell = r.evaluateWindowed(spec, ends);
                    return cell->final;
                },
                [&speedups, &warmups, measure, p,
                 cell](const harness::Runner::Outcome&) {
                    for (std::size_t wi = 0; wi < warmups.size(); ++wi) {
                        const sim::RunResult run = cell->run.composeRange(
                            warmups[wi], warmups[wi] + measure);
                        const sim::RunResult base =
                            cell->baseline.composeRange(
                                warmups[wi], warmups[wi] + measure);
                        const harness::Metrics m =
                            harness::computeMetrics(run, base);
                        speedups[p][wi].push_back(
                            std::max(1e-6, m.speedup));
                    }
                });
            cells.emplace_back(workload + "," + prefetchers[p], cell);
        }
    }
    bench::runSweep(sweep, runner, opt);

    for (std::size_t wi = 0; wi < warmups.size(); ++wi) {
        std::vector<std::string> row = {std::to_string(warmups[wi])};
        for (std::size_t p = 0; p < prefetchers.size(); ++p)
            row.push_back(Table::fmt(geomean(speedups[p][wi])));
        table.addRow(row);
    }
    bench::finish(table, "fig23_warmup");

    bench::emitRunSeries(sopt.series_out, "workload,prefetcher", cells);
    return 0;
}
