/**
 * @file
 * Reproduces Fig. 23 (Appendix B.6): sensitivity of every prefetcher to
 * the number of warmup instructions, from zero warmup upward.
 *
 * Paper shape: Pythia learns online quickly enough that its ranking is
 * stable across warmup lengths, including no warmup at all.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const std::vector<std::uint64_t> warmups = {0, 5'000, 15'000, 30'000,
                                                60'000, 120'000};
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "pythia"};
    const auto& workloads = bench::representativeWorkloads();

    harness::Runner runner;
    Table table("Fig.23 — sensitivity to warmup length (1C)");
    std::vector<std::string> header = {"warmup_instrs"};
    for (const auto& pf : prefetchers)
        header.push_back(pf);
    table.setHeader(header);

    harness::Sweep sweep;
    for (std::uint64_t warmup : warmups) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{std::to_string(warmup)});
        for (const auto& pf : prefetchers)
            bench::addGeomeanSpeedup(
                sweep, workloads, pf,
                [warmup](harness::ExperimentBuilder& e) {
                    e.warmup(warmup);
                },
                opt.sim_scale,
                [row](double g) { row->push_back(Table::fmt(g)); });
        sweep.then([&table, row] { table.addRow(*row); });
    }
    bench::runSweep(sweep, runner, opt);
    bench::finish(table, "fig23_warmup");
    return 0;
}
