/**
 * @file
 * Reproduces Fig. 14 and Fig. 15: reward-level customization for graph
 * processing. Fig. 14 shows, for Ligra-CC, the fraction of runtime spent
 * in each DRAM bandwidth-utilization bucket plus the IPC improvement of
 * each prefetcher; Fig. 15 compares basic vs strict Pythia across the
 * whole Ligra suite.
 *
 * Paper shape: overpredicting prefetchers push the system into the high
 * bandwidth buckets and lose performance; strict Pythia (harsher R_IN,
 * neutral R_NP) adds performance on top of basic with no hardware
 * change.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);

    harness::Runner runner;
    Table f14("Fig.14 — Ligra-CC bandwidth buckets & performance");
    f14.setHeader({"prefetcher", "<25%", "25-50%", "50-75%", ">=75%",
                   "ipc_improvement"});
    harness::Sweep sweep14;
    for (const char* pf : {"none", "spp", "bingo", "mlop", "pythia",
                           "pythia_strict"}) {
        sweep14.add(bench::exp1c("Ligra-CC", pf, opt.sim_scale),
                    [&f14, pf](const harness::Runner::Outcome& o) {
                        const auto& b = o.run.dram_buckets;
                        f14.addRow({pf, Table::pct(b[0]),
                                    Table::pct(b[1]), Table::pct(b[2]),
                                    Table::pct(b[3]),
                                    Table::pct(o.metrics.speedup - 1.0)});
                    });
    }
    bench::runSweep(sweep14, runner, opt);
    bench::finish(f14, "fig14_ligra_cc");

    Table f15("Fig.15 — basic vs strict Pythia on the Ligra suite");
    f15.setHeader({"workload", "basic", "strict", "delta"});
    auto basics = std::make_shared<std::vector<double>>();
    auto stricts = std::make_shared<std::vector<double>>();
    harness::Sweep sweep15;
    for (const auto* w : wl::suiteWorkloads("Ligra")) {
        auto basic = std::make_shared<double>(0.0);
        auto strict = std::make_shared<double>(0.0);
        sweep15.add(bench::exp1c(w->name, "pythia", opt.sim_scale),
                    [basic](const harness::Runner::Outcome& o) {
                        *basic = o.metrics.speedup;
                    });
        sweep15.add(
            bench::exp1c(w->name, "pythia_strict", opt.sim_scale),
            [strict](const harness::Runner::Outcome& o) {
                *strict = o.metrics.speedup;
            });
        sweep15.then([&f15, basics, stricts, basic, strict, w] {
            basics->push_back(std::max(1e-6, *basic));
            stricts->push_back(std::max(1e-6, *strict));
            f15.addRow({w->name, Table::fmt(*basic), Table::fmt(*strict),
                        Table::pct(*strict / *basic - 1.0)});
        });
    }
    bench::runSweep(sweep15, runner, opt);
    f15.addRow({"GEOMEAN", Table::fmt(geomean(*basics)),
                Table::fmt(geomean(*stricts)),
                Table::pct(geomean(*stricts) / geomean(*basics) - 1.0)});
    bench::finish(f15, "fig15_strict_pythia");
    return 0;
}
