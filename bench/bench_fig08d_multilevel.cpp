/**
 * @file
 * Reproduces Fig. 8(d): multi-level prefetching schemes under DRAM
 * bandwidth scaling — stride(L1)+streamer(L2) as in commercial parts,
 * IPCP, and stride(L1)+Pythia(L2).
 *
 * Paper shape: Stride+Pythia leads at every bandwidth point, with the
 * largest margin in the most constrained configuration.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    const double scale = bench::simScale(argc, argv);
    const std::vector<std::uint32_t> mtps_points = {150, 300,  600, 1200,
                                                    2400, 4800, 9600};
    struct Scheme
    {
        const char* label;
        const char* l1;
        const char* l2;
    };
    const std::vector<Scheme> schemes = {
        {"stride+streamer", "stride", "streamer"},
        {"ipcp", "none", "ipcp"},
        {"stride+pythia", "stride", "pythia"},
    };
    const auto& workloads = bench::representativeWorkloads();

    harness::Runner runner;
    Table table("Fig.8(d) — multi-level schemes vs DRAM MTPS (1C)");
    std::vector<std::string> header = {"mtps"};
    for (const auto& s : schemes)
        header.push_back(s.label);
    table.setHeader(header);

    for (std::uint32_t mtps : mtps_points) {
        std::vector<std::string> row = {std::to_string(mtps)};
        for (const auto& scheme : schemes) {
            const double g = bench::geomeanSpeedup(
                runner, workloads, scheme.l2,
                [&](harness::ExperimentBuilder& e) {
                    e.mtps(mtps).l1(scheme.l1);
                },
                scale);
            row.push_back(Table::fmt(g));
        }
        table.addRow(row);
    }
    bench::finish(table, "fig08d_multilevel");
    return 0;
}
