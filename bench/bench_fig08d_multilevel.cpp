/**
 * @file
 * Reproduces Fig. 8(d): multi-level prefetching schemes under DRAM
 * bandwidth scaling — stride(L1)+streamer(L2) as in commercial parts,
 * IPCP, and stride(L1)+Pythia(L2).
 *
 * Paper shape: Stride+Pythia leads at every bandwidth point, with the
 * largest margin in the most constrained configuration.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const std::vector<std::uint32_t> mtps_points = {150, 300,  600, 1200,
                                                    2400, 4800, 9600};
    struct Scheme
    {
        const char* label;
        const char* l1;
        const char* l2;
    };
    const std::vector<Scheme> schemes = {
        {"stride+streamer", "stride", "streamer"},
        {"ipcp", "none", "ipcp"},
        {"stride+pythia", "stride", "pythia"},
    };
    const auto& workloads = bench::representativeWorkloads();

    harness::Runner runner;
    Table table("Fig.8(d) — multi-level schemes vs DRAM MTPS (1C)");
    std::vector<std::string> header = {"mtps"};
    for (const auto& s : schemes)
        header.push_back(s.label);
    table.setHeader(header);

    harness::Sweep sweep;
    for (std::uint32_t mtps : mtps_points) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{std::to_string(mtps)});
        for (const auto& scheme : schemes) {
            const std::string l1 = scheme.l1;
            bench::addGeomeanSpeedup(
                sweep, workloads, scheme.l2,
                [mtps, l1](harness::ExperimentBuilder& e) {
                    e.mtps(mtps).l1(l1);
                },
                opt.sim_scale,
                [row](double g) { row->push_back(Table::fmt(g)); });
        }
        sweep.then([&table, row] { table.addRow(*row); });
    }
    bench::runSweep(sweep, runner, opt);
    bench::finish(table, "fig08d_multilevel");
    return 0;
}
