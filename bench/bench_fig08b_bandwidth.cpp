/**
 * @file
 * Reproduces Fig. 8(b): geomean speedup under DRAM bandwidth scaling
 * from 150 to 9600 MTPS in the single-core system.
 *
 * Paper shape: MLOP/Bingo gains shrink sharply as bandwidth drops (their
 * overpredictions waste a scarce resource) while Pythia stays ahead in
 * the most constrained configurations.
 */
#include "bench_common.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    bench::BenchOptions opt = bench::parseBenchArgs(argc, argv);
    const std::vector<std::uint32_t> mtps_points = {150, 300,  600, 1200,
                                                    2400, 4800, 9600};
    const std::vector<std::string> prefetchers = {"spp", "bingo", "mlop",
                                                  "spp_ppf", "pythia"};
    const auto& workloads = bench::representativeWorkloads();

    harness::Runner runner;
    Table table("Fig.8(b) — geomean speedup vs DRAM MTPS (1C)");
    std::vector<std::string> header = {"mtps"};
    for (const auto& pf : prefetchers)
        header.push_back(pf);
    table.setHeader(header);

    harness::Sweep sweep;
    for (std::uint32_t mtps : mtps_points) {
        auto row = std::make_shared<std::vector<std::string>>(
            std::vector<std::string>{std::to_string(mtps)});
        for (const auto& pf : prefetchers)
            bench::addGeomeanSpeedup(
                sweep, workloads, pf,
                [mtps](harness::ExperimentBuilder& e) { e.mtps(mtps); },
                opt.sim_scale,
                [row](double g) { row->push_back(Table::fmt(g)); });
        sweep.then([&table, row] { table.addRow(*row); });
    }
    bench::runSweep(sweep, runner, opt);
    bench::finish(table, "fig08b_bandwidth");
    return 0;
}
