/**
 * @file
 * pythia_serve — the prefetch-as-a-service daemon (DESIGN.md §12).
 *
 * Accepts concurrent client connections on a Unix or loopback-TCP
 * socket, speaks pythia-serve-v1, and runs each client's streamed
 * access trace through its own tenant SimSession, returning windowed
 * metrics live. SIGTERM/SIGINT drain gracefully: live sessions are
 * evicted to state_dir (reconnect resumes them bit-exactly) and the
 * process exits 0.
 *
 * Usage:
 *   pythia_serve [listen=unix:/tmp/pythia.sock | listen=tcp:0]
 *                [workers=2] [state_dir=serve_state]
 *                [inflight_records=1048576] [outbox_bytes=8388608]
 *                [idle_evict_ms=0] [io=auto|poll|epoll]
 *                [warm_pool_bytes=67108864] [quiet=0]
 *
 * listen=tcp:<port> binds 127.0.0.1:<port> (0 picks an ephemeral port);
 * the daemon prints "listening on <address>" on stdout either way, so
 * scripts can scrape the bound address.
 *
 * io= selects the readiness backend (auto → epoll on Linux, poll
 * elsewhere). warm_pool_bytes= caps the shared warm-snapshot pool —
 * identical specs warm once and every later open restores the
 * post-warmup state bit-exactly; 0 disables the pool.
 */
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/config.hpp"
#include "service/server.hpp"

namespace {

pythia::service::ServeServer* g_server = nullptr;

void
onSignal(int)
{
    if (g_server)
        g_server->requestDrain(); // async-signal-safe
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace pythia;
    Config cli;
    try {
        cli.parseArgsStrict(argc, argv,
                            {"listen", "workers", "state_dir",
                             "inflight_records", "outbox_bytes",
                             "idle_evict_ms", "io", "warm_pool_bytes",
                             "quiet"});
    } catch (const std::exception& e) {
        std::cerr << "pythia_serve: " << e.what() << "\n";
        return 2;
    }

    try {
        service::ServeOptions opt;
        const std::string listen =
            cli.getString("listen", "tcp:0");
        if (listen.rfind("unix:", 0) == 0) {
            opt.unix_path = listen.substr(5);
        } else if (listen.rfind("tcp:", 0) == 0) {
            // tcp:<port> or tcp:127.0.0.1:<port> — the daemon only
            // binds loopback, so any other host is an error, and a
            // malformed port must not silently atoi to garbage.
            std::string rest = listen.substr(4);
            const std::size_t colon = rest.rfind(':');
            if (colon != std::string::npos) {
                const std::string host = rest.substr(0, colon);
                if (host != "127.0.0.1" && host != "localhost") {
                    std::cerr << "pythia_serve: listen only binds "
                                 "loopback; got host '"
                              << host << "'\n";
                    return 2;
                }
                rest = rest.substr(colon + 1);
            }
            char* end = nullptr;
            const long port = std::strtol(rest.c_str(), &end, 10);
            if (rest.empty() || *end != '\0' || port < 0 ||
                port > 65535) {
                std::cerr << "pythia_serve: bad tcp port '" << rest
                          << "' in listen=" << listen << "\n";
                return 2;
            }
            opt.tcp_port = static_cast<std::uint16_t>(port);
        } else {
            std::cerr << "pythia_serve: listen must be unix:<path> or "
                         "tcp:<port>, got '"
                      << listen << "'\n";
            return 2;
        }
        opt.workers = static_cast<unsigned>(cli.getInt("workers", 2));
        opt.state_dir = cli.getString("state_dir", "serve_state");
        opt.max_inflight_records = static_cast<std::uint64_t>(
            cli.getInt("inflight_records", 1 << 20));
        opt.max_outbox_bytes = static_cast<std::size_t>(
            cli.getInt("outbox_bytes", 8 << 20));
        opt.idle_evict_ms = static_cast<std::uint64_t>(
            cli.getInt("idle_evict_ms", 0));
        opt.io = service::parseIoBackend(
            cli.getString("io", "auto"));
        // Warm pool on by default: 64 MiB holds dozens of pooled
        // warmups; pass warm_pool_bytes=0 to opt out.
        opt.warm_pool_bytes = static_cast<std::size_t>(
            cli.getInt("warm_pool_bytes", 64 << 20));
        if (!cli.getBool("quiet", false))
            opt.log = &std::cerr;

        service::ServeServer server(opt);
        server.start();
        g_server = &server;
        std::signal(SIGTERM, onSignal);
        std::signal(SIGINT, onSignal);

        std::cout << "listening on " << server.boundAddress()
                  << std::endl; // flush: scripts scrape this line

        const int rc = server.join();
        g_server = nullptr;
        const auto s = server.stats();
        std::cout << "served " << s.sessions_opened << " sessions ("
                  << s.sessions_resumed << " resumed, "
                  << s.sessions_evicted << " evicted, "
                  << s.runs_completed << " completed), "
                  << s.windows_emitted << " windows, "
                  << s.records_received << " records, warm pool "
                  << s.warm_hits << " hits / " << s.warm_misses
                  << " misses\n";
        return rc;
    } catch (const std::exception& e) {
        std::cerr << "pythia_serve: " << e.what() << "\n";
        return 1;
    }
}
