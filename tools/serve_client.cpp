/**
 * @file
 * serve_client — synthetic load generator for pythia_serve
 * (DESIGN.md §12).
 *
 * Replays registry workloads from N concurrent synthetic clients: each
 * replay opens a fresh tenant, captures the workload generator's
 * record stream (exactly what the offline SimSession would consume)
 * and streams it through the daemon, collecting windowed metrics until
 * run end. Emits a latency-percentile pythia-perf-v1 artifact
 * (BENCH_service.json): p50/p95/p99 per-replay latency, window
 * inter-arrival percentiles, and aggregate streams/sec.
 *
 * Usage:
 *   serve_client server=tcp:127.0.0.1:7421 [clients=8] [replays=64]
 *                [workloads=470.lbm-164B,602.gcc-s] [prefetcher=pythia]
 *                [warmup=2000] [sim_instrs=6000] [window=2000]
 *                [perf_out=BENCH_service.json] [series_dir=]
 *                [reference_dir=] [stats=0] [quiet=0]
 *
 * series_dir= writes each distinct spec's streamed windowed metrics as
 * CSV; reference_dir= writes the offline SimSession reference for the
 * same specs. CI byte-diffs the two directories — the serving
 * determinism rule, enforced end-to-end over real sockets.
 *
 * High-tenant mode is just big numbers: clients=1024 replays=2048
 * opens 1024 concurrent tenants with open/close churn as each thread
 * replays the next stream. Against a daemon with warm_pool_bytes>0
 * and one shared spec, every open after the first is a warm-pool hit
 * (reported as warm_hits/warm_misses in the service block): the
 * client streams from ack.records_received, past the pooled warmup
 * prefix the daemon already holds.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "harness/perf.hpp"
#include "harness/runner.hpp"
#include "harness/session.hpp"
#include "harness/timeseries.hpp"
#include "service/client.hpp"
#include "service/wire.hpp"
#include "workloads/suites.hpp"

using namespace pythia;
namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

namespace {

struct SpecCase
{
    harness::ExperimentSpec spec;
    std::vector<wl::TraceRecord> records; ///< exactly what offline runs
};

std::vector<std::string>
splitList(const std::string& csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item =
            csv.substr(start, comma == std::string::npos
                                  ? std::string::npos
                                  : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

} // namespace

int
main(int argc, char** argv)
{
    Config cli;
    try {
        cli.parseArgsStrict(argc, argv,
                            {"server", "clients", "replays", "workloads",
                             "prefetcher", "warmup", "sim_instrs",
                             "window", "perf_out", "series_dir",
                             "reference_dir", "stats", "quiet"});
    } catch (const std::exception& e) {
        std::cerr << "serve_client: " << e.what() << "\n";
        return 2;
    }

    try {
        const std::string server = cli.getString("server");
        if (server.empty()) {
            std::cerr << "serve_client: server=<address> is required "
                         "(the address pythia_serve printed)\n";
            return 2;
        }
        const auto clients =
            static_cast<unsigned>(cli.getInt("clients", 8));
        const auto replays =
            static_cast<std::size_t>(cli.getInt("replays", 64));
        const std::string prefetcher =
            cli.getString("prefetcher", "pythia");
        const auto warmup =
            static_cast<std::uint64_t>(cli.getInt("warmup", 2000));
        const auto sim_instrs =
            static_cast<std::uint64_t>(cli.getInt("sim_instrs", 6000));
        const auto window =
            static_cast<std::uint64_t>(cli.getInt("window", 2000));
        const std::string perf_out =
            cli.getString("perf_out", "BENCH_service.json");
        const std::string series_dir = cli.getString("series_dir");
        const std::string reference_dir =
            cli.getString("reference_dir");
        const bool print_stats = cli.getBool("stats", false);
        const bool quiet = cli.getBool("quiet", false);

        std::vector<std::string> names =
            splitList(cli.getString("workloads"));
        if (names.empty())
            names = {"470.lbm-164B", "602.gcc_s-734B", "Ligra-PageRank",
                     "Cloudsuite-Cassandra"};

        // Capture each spec's record stream once, shared read-only by
        // every replay thread — identical by construction to what the
        // offline SimSession consumes (workloadsFor derives the same
        // seeded generator).
        std::vector<SpecCase> cases;
        for (const std::string& name : names) {
            SpecCase c;
            c.spec.workload = name;
            c.spec.prefetcher = prefetcher;
            c.spec.warmup_instrs = warmup;
            c.spec.sim_instrs = sim_instrs;
            auto workloads = harness::workloadsFor(c.spec);
            const std::uint64_t budget =
                service::recordBudgetFor(c.spec);
            c.records.reserve(budget);
            for (std::uint64_t i = 0; i < budget; ++i)
                c.records.push_back(workloads[0]->next());
            cases.push_back(std::move(c));
        }

        if (!reference_dir.empty()) {
            fs::create_directories(reference_dir);
            for (std::size_t i = 0; i < cases.size(); ++i) {
                harness::TimeSeries series;
                harness::SimSession session(cases[i].spec);
                session.addObserver(&series);
                while (!session.done())
                    session.advance(window);
                series.writeCsv(reference_dir + "/spec" +
                                std::to_string(i) + ".csv");
            }
        }
        if (!series_dir.empty())
            fs::create_directories(series_dir);

        std::atomic<std::size_t> next_replay{0};
        std::atomic<std::size_t> failures{0};
        std::atomic<std::uint64_t> records_streamed{0};
        std::atomic<std::uint64_t> windows_received{0};
        std::atomic<std::uint64_t> warm_hits{0};
        std::atomic<std::uint64_t> warm_misses{0};
        std::mutex agg_mu;
        std::vector<double> replay_latency_s;
        std::vector<double> window_gap_s;

        const auto t0 = Clock::now();
        std::vector<std::thread> threads;
        for (unsigned c = 0; c < clients; ++c) {
            threads.emplace_back([&, c] {
                for (;;) {
                    const std::size_t r = next_replay.fetch_add(1);
                    if (r >= replays)
                        return;
                    const std::size_t s = r % cases.size();
                    const SpecCase& sc = cases[s];
                    try {
                        const auto start = Clock::now();
                        service::ServeClient client(server);
                        const auto ack = client.open(
                            "load-" + std::to_string(c) + "-" +
                                std::to_string(r),
                            sc.spec, window);
                        (ack.warm ? warm_hits : warm_misses) += 1;
                        // A warm-pool hit already holds the warmup
                        // prefix — stream from the daemon's resume
                        // index (0 on a cold open).
                        auto progress = client.streamRun(
                            sc.records, ack.records_received);
                        const double secs =
                            std::chrono::duration<double>(Clock::now() -
                                                          start)
                                .count();
                        records_streamed += progress.records_streamed;
                        windows_received += progress.series.size();
                        {
                            std::lock_guard<std::mutex> lk(agg_mu);
                            replay_latency_s.push_back(secs);
                            window_gap_s.insert(
                                window_gap_s.end(),
                                progress.window_gaps_s.begin(),
                                progress.window_gaps_s.end());
                        }
                        // All replays of one spec are bit-identical
                        // (serving determinism), so the overwrite race
                        // between threads is benign.
                        if (!series_dir.empty())
                            progress.series.writeCsv(
                                series_dir + "/spec" +
                                std::to_string(s) + ".csv");
                    } catch (const std::exception& e) {
                        ++failures;
                        std::lock_guard<std::mutex> lk(agg_mu);
                        std::cerr << "serve_client: replay " << r
                                  << " failed: " << e.what() << "\n";
                    }
                }
            });
        }
        for (auto& th : threads)
            th.join();
        const double wall =
            std::chrono::duration<double>(Clock::now() - t0).count();

        if (print_stats) {
            service::ServeClient client(server);
            std::cout << client.stats() << "\n";
        }

        const double streams_per_sec =
            wall > 0 ? static_cast<double>(replays - failures) / wall
                     : 0.0;
        // Sort once, extract every percentile from the sorted vector
        // (harness::percentileSorted — the unit-tested nearest-rank
        // core) instead of re-sorting per percentile.
        std::sort(replay_latency_s.begin(), replay_latency_s.end());
        std::sort(window_gap_s.begin(), window_gap_s.end());
        if (!quiet) {
            std::printf("serve_client: %zu replays (%zu failed), %u "
                        "clients, %.2fs wall, %.2f streams/sec\n",
                        replays, failures.load(), clients, wall,
                        streams_per_sec);
            std::printf("  replay latency p50=%.4fs p95=%.4fs "
                        "p99=%.4fs, warm pool %llu hits / %llu "
                        "misses\n",
                        harness::percentileSorted(replay_latency_s, 50),
                        harness::percentileSorted(replay_latency_s, 95),
                        harness::percentileSorted(replay_latency_s, 99),
                        static_cast<unsigned long long>(
                            warm_hits.load()),
                        static_cast<unsigned long long>(
                            warm_misses.load()));
        }

        if (!perf_out.empty()) {
            // pythia-perf-v1 with a "service" extension block:
            // consumers ignore unknown keys (DESIGN.md §7).
            std::ostringstream os;
            os.setf(std::ios::fmtflags(0), std::ios::floatfield);
            os.precision(9);
            os << "{\n  \"schema\": \"pythia-perf-v1\",\n"
               << "  \"bench\": \"serve_client\",\n"
               << "  \"jobs\": " << clients << ",\n"
               << "  \"sweeps\": [],\n"
               << "  \"total\": {\"experiments\": "
               << (replays - failures) << ", \"seconds\": " << wall
               << ", \"sims_per_sec\": " << streams_per_sec << "},\n"
               << "  \"service\": {\n"
               << "    \"clients\": " << clients << ",\n"
               << "    \"replays\": " << replays << ",\n"
               << "    \"failures\": " << failures << ",\n"
               << "    \"streams_per_sec\": " << streams_per_sec
               << ",\n"
               << "    \"records_streamed\": " << records_streamed
               << ",\n"
               << "    \"windows\": " << windows_received << ",\n"
               << "    \"warm_hits\": " << warm_hits << ",\n"
               << "    \"warm_misses\": " << warm_misses << ",\n"
               << "    \"latency_s\": {\"p50\": "
               << harness::percentileSorted(replay_latency_s, 50)
               << ", \"p95\": "
               << harness::percentileSorted(replay_latency_s, 95)
               << ", \"p99\": "
               << harness::percentileSorted(replay_latency_s, 99)
               << "},\n"
               << "    \"window_latency_s\": {\"p50\": "
               << harness::percentileSorted(window_gap_s, 50)
               << ", \"p95\": "
               << harness::percentileSorted(window_gap_s, 95)
               << ", \"p99\": "
               << harness::percentileSorted(window_gap_s, 99)
               << "}\n  }\n}\n";
            std::ofstream out(perf_out);
            out << os.str();
            if (!out) {
                std::cerr << "serve_client: cannot write " << perf_out
                          << "\n";
                return 1;
            }
        }
        return failures.load() == 0 ? 0 : 1;
    } catch (const std::exception& e) {
        std::cerr << "serve_client: " << e.what() << "\n";
        return 1;
    }
}
