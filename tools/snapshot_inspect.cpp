/**
 * @file
 * Inspect pythia-snap-v1 snapshot files without restoring them: dump
 * the header (version, fingerprint, checksum verdict) and the section
 * layout (name, offset, length, payload digest), or diff two snapshots
 * section by section to localize where the state of two runs diverged
 * (DESIGN.md §9).
 *
 * Usage:
 *   snapshot_inspect <file.snap>            # dump header + sections
 *   snapshot_inspect <a.snap> <b.snap>      # diff the two snapshots
 *
 * Inspection tolerates a bad trailing checksum (it is reported, not
 * thrown) so a corrupt file can still be dumped and diagnosed; files
 * too malformed to walk (bad magic, truncated sections, unsupported
 * version) terminate with the typed error's message and exit code 1.
 * Diff exit codes follow cmp/diff convention: 0 identical bodies,
 * 1 differing, 2 usage or read errors.
 */
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "snapshot/snapshot.hpp"

namespace {

using pythia::snap::SectionInfo;
using pythia::snap::SnapshotInfo;

std::string
hex64(std::uint64_t v)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

void
dump(const std::string& path, const SnapshotInfo& info)
{
    std::cout << path << "\n"
              << "  format:      pythia-snap-v" << info.version << "\n"
              << "  size:        " << info.file_bytes << " bytes\n"
              << "  checksum:    "
              << (info.checksum_ok
                      ? "ok (" + hex64(info.checksum_stored) + ")"
                      : "MISMATCH (stored " + hex64(info.checksum_stored) +
                            ", computed " + hex64(info.checksum_computed) +
                            ")")
              << "\n"
              << "  fingerprint: " << info.fingerprint << "\n"
              << "  sections:    " << info.sections.size() << "\n";
    for (const SectionInfo& s : info.sections)
        std::cout << "    " << std::left << std::setw(12) << s.name
                  << std::right << " offset=" << std::setw(8) << s.offset
                  << " length=" << std::setw(8) << s.length
                  << " digest=" << hex64(s.digest) << "\n";
}

int
diff(const std::string& path_a, const SnapshotInfo& a,
     const std::string& path_b, const SnapshotInfo& b)
{
    bool differ = false;
    auto report = [&](const std::string& line) {
        differ = true;
        std::cout << line << "\n";
    };

    if (a.fingerprint != b.fingerprint) {
        const std::string fp_diff =
            pythia::snap::diffFingerprints(a.fingerprint, b.fingerprint);
        report("fingerprints differ:");
        std::cout << "  " << fp_diff << "\n";
    }

    // Index b's sections by name; section order is part of the format,
    // but diffing by name localizes renames/reorders too.
    std::vector<const SectionInfo*> b_left;
    for (const SectionInfo& sb : b.sections)
        b_left.push_back(&sb);
    for (const SectionInfo& sa : a.sections) {
        const SectionInfo* match = nullptr;
        for (auto it = b_left.begin(); it != b_left.end(); ++it)
            if ((*it)->name == sa.name) {
                match = *it;
                b_left.erase(it);
                break;
            }
        if (!match) {
            report("section '" + sa.name + "' only in " + path_a);
            continue;
        }
        if (sa.length != match->length)
            report("section '" + sa.name + "' length: " +
                   std::to_string(sa.length) + " vs " +
                   std::to_string(match->length));
        else if (sa.digest != match->digest)
            report("section '" + sa.name + "' payload differs (digest " +
                   hex64(sa.digest) + " vs " + hex64(match->digest) + ")");
    }
    for (const SectionInfo* sb : b_left)
        report("section '" + sb->name + "' only in " + path_b);

    if (!differ) {
        std::cout << "snapshots are identical (" << a.sections.size()
                  << " sections)\n";
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2 || argc > 3) {
        std::cerr << "usage: snapshot_inspect <file.snap> [other.snap]\n";
        return 2;
    }
    try {
        const SnapshotInfo a =
            pythia::snap::inspectSnapshotFile(argv[1]);
        if (argc == 2) {
            dump(argv[1], a);
            return a.checksum_ok ? 0 : 1;
        }
        const SnapshotInfo b =
            pythia::snap::inspectSnapshotFile(argv[2]);
        return diff(argv[1], a, argv[2], b);
    } catch (const pythia::snap::SnapshotError& e) {
        std::cerr << "snapshot_inspect: " << e.what() << "\n";
        return argc == 2 ? 1 : 2;
    }
}
