#!/usr/bin/env python3
"""Perf regression gate over pythia-perf-v1 artifacts (DESIGN.md §7/§10).

Usage: perf_gate.py [--json] <baseline.json> <current.json>

Three checks, all governed by PERF_GATE_THRESHOLD (default 0.30):

 1. Aggregate throughput: total.sims_per_sec must not fall more than
    the threshold below the committed baseline.
 2. Per-component timings: for every component in the baseline's
    "components" map (ns_per_op of one hot-path kernel, written by
    bench_micro_hotpath), the current ns_per_op must not rise more
    than the threshold above the baseline. This pins individual
    kernels: a regression in, say, eq_insert can hide inside a
    passing aggregate number when another component got faster.
 3. Service throughput: when the baseline carries a "service" block
    (serve_client's BENCH_service.json extension, DESIGN.md §12.5),
    service.streams_per_sec must not fall more than the threshold
    below the baseline — the daemon's scale-out number (event loop +
    vectored writes + warm pool) gets the same floor machinery as the
    hot-path components.

The component sets must agree. A component present in the current
artifact but absent from the committed baseline fails with an explicit
"baseline is stale, refresh it" message (never a KeyError); a component
that disappeared from the current artifact fails too, because a renamed
or dropped kernel would otherwise silently leave the gate. The same
staleness rule applies to the "service" block: present on one side
only is a failure, not a skip.

Success output names the committed baseline artifact and echoes every
component's baseline/current ns_per_op, so a green CI log still shows
exactly which numbers the gate compared. --json replaces the human
lines on stdout with one machine-readable summary object (schema
"pythia-perf-gate-v1"); failure diagnostics stay on stderr either way.

The committed baseline was measured on a developer machine; CI runners
differ, so the threshold is deliberately loose — it exists to catch
order-of-magnitude regressions (an accidentally quadratic loop, a lost
optimization flag), not single-digit drift. Tune via the
PERF_GATE_THRESHOLD environment variable (0.0-1.0).
"""

import json
import os
import sys


def load_doc(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "pythia-perf-v1":
        sys.exit(f"perf_gate: {path}: unexpected schema "
                 f"{doc.get('schema')!r} (want pythia-perf-v1)")
    return doc


def sims_per_sec(doc, path):
    try:
        value = float(doc["total"]["sims_per_sec"])
    except (KeyError, TypeError, ValueError):
        sys.exit(f"perf_gate: {path}: missing total.sims_per_sec")
    if value <= 0:
        sys.exit(f"perf_gate: {path}: non-positive sims_per_sec {value}")
    return value


def components(doc, path):
    """The artifact's components map as {name: ns_per_op}; {} when the
    artifact predates per-component timings (optional in the schema)."""
    comp = doc.get("components")
    if comp is None:
        return {}
    if not isinstance(comp, dict):
        sys.exit(f"perf_gate: {path}: \"components\" is not an object")
    out = {}
    for name, entry in comp.items():
        try:
            ns = float(entry["ns_per_op"])
        except (KeyError, TypeError, ValueError):
            sys.exit(f"perf_gate: {path}: component {name!r} has no "
                     f"usable ns_per_op")
        if ns <= 0:
            sys.exit(f"perf_gate: {path}: component {name!r} has "
                     f"non-positive ns_per_op {ns}")
        out[name] = ns
    return out


def service_streams(doc, path):
    """service.streams_per_sec, or None when the artifact has no
    "service" block (non-serve_client benches)."""
    service = doc.get("service")
    if service is None:
        return None
    if not isinstance(service, dict):
        sys.exit(f"perf_gate: {path}: \"service\" is not an object")
    try:
        value = float(service["streams_per_sec"])
    except (KeyError, TypeError, ValueError):
        sys.exit(f"perf_gate: {path}: missing service.streams_per_sec")
    if value <= 0:
        sys.exit(f"perf_gate: {path}: non-positive streams_per_sec "
                 f"{value}")
    return value


def main(argv):
    args = list(argv[1:])
    emit_json = "--json" in args
    if emit_json:
        args.remove("--json")
    if len(args) != 2:
        sys.exit(f"usage: {argv[0]} [--json] <baseline.json> "
                 f"<current.json>")
    threshold = float(os.environ.get("PERF_GATE_THRESHOLD", "0.30"))
    if not 0.0 <= threshold <= 1.0:
        sys.exit(f"perf_gate: PERF_GATE_THRESHOLD {threshold} outside "
                 "[0, 1]")
    base_path, cur_path = args
    base_doc = load_doc(base_path)
    cur_doc = load_doc(cur_path)

    def say(line):
        if not emit_json:
            print(line)

    failures = []

    # -- aggregate throughput -------------------------------------------
    baseline = sims_per_sec(base_doc, base_path)
    current = sims_per_sec(cur_doc, cur_path)
    floor = baseline * (1.0 - threshold)
    ratio = current / baseline
    say(f"perf_gate: baseline artifact {base_path}")
    say(f"perf_gate: baseline {baseline:.2f} sims/s, "
        f"current {current:.2f} sims/s ({ratio:.2f}x), "
        f"floor {floor:.2f} (threshold {threshold:.0%})")
    if current < floor:
        failures.append(
            f"total.sims_per_sec regressed: {current:.2f} < floor "
            f"{floor:.2f}")

    # -- service streams/sec --------------------------------------------
    base_svc = service_streams(base_doc, base_path)
    cur_svc = service_streams(cur_doc, cur_path)
    svc_report = None
    if base_svc is None and cur_svc is not None:
        failures.append(
            f"current artifact carries a \"service\" block but the "
            f"committed baseline {base_path} does not — the baseline "
            f"is stale; re-run serve_client and commit the refreshed "
            f"JSON")
    elif base_svc is not None and cur_svc is None:
        failures.append(
            f"committed baseline has a \"service\" block but the "
            f"current artifact does not — a dropped service bench "
            f"would silently leave the gate; update the baseline "
            f"deliberately")
    elif base_svc is not None:
        svc_floor = base_svc * (1.0 - threshold)
        svc_ok = cur_svc >= svc_floor
        if not svc_ok:
            failures.append(
                f"service.streams_per_sec regressed: {cur_svc:.2f} < "
                f"floor {svc_floor:.2f} (baseline {base_svc:.2f})")
        svc_report = {
            "baseline_streams_per_sec": base_svc,
            "current_streams_per_sec": cur_svc,
            "floor_streams_per_sec": svc_floor,
            "pass": svc_ok,
        }
        say(f"perf_gate: service baseline {base_svc:.2f} streams/s, "
            f"current {cur_svc:.2f} streams/s, floor {svc_floor:.2f} "
            f"— {'ok' if svc_ok else 'REGRESSION'}")

    # -- per-component ns/op --------------------------------------------
    base_comp = components(base_doc, base_path)
    cur_comp = components(cur_doc, cur_path)

    for name in sorted(cur_comp.keys() - base_comp.keys()):
        failures.append(
            f"component {name!r} is measured by the current bench but "
            f"missing from the committed baseline {base_path} — the "
            f"baseline artifact is stale; re-run the bench and commit "
            f"the refreshed JSON")
    for name in sorted(base_comp.keys() - cur_comp.keys()):
        failures.append(
            f"component {name!r} is in the committed baseline but the "
            f"current bench no longer reports it — a renamed or "
            f"dropped kernel would silently leave the gate; update the "
            f"baseline deliberately")

    comp_report = {}
    for name in sorted(base_comp.keys() & cur_comp.keys()):
        base_ns = base_comp[name]
        cur_ns = cur_comp[name]
        ceiling = base_ns * (1.0 + threshold)
        ok = cur_ns <= ceiling
        if not ok:
            failures.append(
                f"component {name!r} regressed: {cur_ns:.1f} ns/op > "
                f"ceiling {ceiling:.1f} (baseline {base_ns:.1f})")
        comp_report[name] = {
            "baseline_ns_per_op": base_ns,
            "current_ns_per_op": cur_ns,
            "ceiling_ns_per_op": ceiling,
            "pass": ok,
        }
        say(f"perf_gate:   {name}: baseline {base_ns:.1f} ns/op, "
            f"current {cur_ns:.1f} ns/op, ceiling {ceiling:.1f} "
            f"— {'ok' if ok else 'REGRESSION'}")

    if emit_json:
        json.dump(
            {
                "schema": "pythia-perf-gate-v1",
                "baseline": base_path,
                "current": cur_path,
                "threshold": threshold,
                "total": {
                    "baseline_sims_per_sec": baseline,
                    "current_sims_per_sec": current,
                    "ratio": ratio,
                    "floor_sims_per_sec": floor,
                    "pass": current >= floor,
                },
                "service": svc_report,
                "components": comp_report,
                "failures": failures,
                "pass": not failures,
            },
            sys.stdout, indent=2)
        print()

    if failures:
        for f in failures:
            print(f"perf_gate: FAIL: {f}", file=sys.stderr)
        sys.exit(1)
    say(f"perf_gate: ok ({len(comp_report)} components vs {base_path})")


if __name__ == "__main__":
    main(sys.argv)
