#!/usr/bin/env python3
"""Perf regression gate over pythia-perf-v1 artifacts (DESIGN.md §7).

Usage: perf_gate.py <baseline.json> <current.json>

Compares total.sims_per_sec of a freshly measured artifact against the
committed baseline and exits non-zero when the current throughput falls
more than PERF_GATE_THRESHOLD (default 0.30, i.e. >30% regression)
below the baseline. Improvements and small fluctuations pass; a passing
run prints both numbers so the CI log doubles as the perf trajectory.

The committed baseline was measured on a developer machine; CI runners
differ, so the threshold is deliberately loose — it exists to catch
order-of-magnitude regressions (an accidentally quadratic loop, a lost
optimization flag), not single-digit drift. Tune via the
PERF_GATE_THRESHOLD environment variable (0.0-1.0).
"""

import json
import os
import sys


def load_sims_per_sec(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "pythia-perf-v1":
        sys.exit(f"perf_gate: {path}: unexpected schema "
                 f"{doc.get('schema')!r} (want pythia-perf-v1)")
    try:
        value = float(doc["total"]["sims_per_sec"])
    except (KeyError, TypeError, ValueError):
        sys.exit(f"perf_gate: {path}: missing total.sims_per_sec")
    if value <= 0:
        sys.exit(f"perf_gate: {path}: non-positive sims_per_sec {value}")
    return value


def main(argv):
    if len(argv) != 3:
        sys.exit(f"usage: {argv[0]} <baseline.json> <current.json>")
    threshold = float(os.environ.get("PERF_GATE_THRESHOLD", "0.30"))
    if not 0.0 <= threshold <= 1.0:
        sys.exit(f"perf_gate: PERF_GATE_THRESHOLD {threshold} outside "
                 "[0, 1]")
    baseline = load_sims_per_sec(argv[1])
    current = load_sims_per_sec(argv[2])
    floor = baseline * (1.0 - threshold)
    ratio = current / baseline
    line = (f"perf_gate: baseline {baseline:.2f} sims/s, "
            f"current {current:.2f} sims/s ({ratio:.2f}x), "
            f"floor {floor:.2f} (threshold {threshold:.0%})")
    if current < floor:
        sys.exit(line + " — REGRESSION, failing the gate")
    print(line + " — ok")


if __name__ == "__main__":
    main(sys.argv)
