/**
 * @file
 * Shard worker process: the executable harness::ShardCoordinator spawns
 * once per worker slot. The whole protocol — handshake, job evaluation,
 * result frames, fault-injection hooks — lives in
 * harness::shardWorkerMain (src/harness/shard.cpp) so tests can link it
 * directly; this translation unit only provides the entry point.
 */
#include "harness/shard.hpp"

int
main(int argc, char** argv)
{
    return pythia::harness::shardWorkerMain(argc, argv);
}
