/**
 * @file
 * Capture any workload spec's stream to a binary trace file whose
 * "trace:file=<path>" replay is bit-identical to the live generator —
 * the ChampSim-style trace pipeline over the synthetic substrate
 * (DESIGN.md §4.2).
 *
 * Usage:
 *   trace_capture workload=<spec-or-name> out=<path>
 *                 [records=200000] [seed=0] [verify=1]
 *
 * workload= accepts catalog names and registry specs alike
 * ("482.sphinx3-417B", "stream:footprint=256M,mem_ratio=0.4",
 * "phase:stream@40+graph@60"); seed=0 keeps the workload's
 * deterministic default seed. verify=1 (the default) replays the
 * written file against a fresh instance of the generator and fails
 * unless every record matches — the capture/replay equivalence rule.
 */
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "workloads/suites.hpp"
#include "workloads/trace.hpp"

int
main(int argc, char** argv)
{
    using namespace pythia;
    Config cli;
    try {
        cli.parseArgsStrict(argc, argv,
                            {"workload", "out", "records", "seed",
                             "verify"});
    } catch (const std::exception& e) {
        std::cerr << "trace_capture: " << e.what() << "\n";
        return 2;
    }

    const std::string spec = cli.getString("workload");
    if (spec.empty()) {
        std::cerr << "trace_capture: workload=<spec-or-name> is "
                     "required (e.g. workload=470.lbm-164B or "
                     "workload=stream:footprint=256M)\n";
        return 2;
    }

    try {
        const std::string out = cli.getString("out", "trace.bin");
        const std::int64_t records_arg = cli.getInt("records", 200'000);
        const auto seed =
            static_cast<std::uint64_t>(cli.getInt("seed", 0));
        const bool verify = cli.getBool("verify", true);
        if (records_arg <= 0) {
            std::cerr << "trace_capture: records must be > 0\n";
            return 2;
        }
        const auto records = static_cast<std::size_t>(records_arg);

        auto live = wl::makeWorkload(spec, seed);
        if (!wl::writeTraceFile(out, *live, records)) {
            std::cerr << "trace_capture: cannot write " << out << "\n";
            return 1;
        }
        std::cout << "wrote " << records << " records of '"
                  << live->name() << "' to " << out << "\n";

        if (verify) {
            // Replay against a fresh instance: the written stream must
            // match the live generator record for record.
            auto fresh = wl::makeWorkload(spec, seed);
            wl::FileWorkload replay(out);
            for (std::size_t i = 0; i < records; ++i) {
                const wl::TraceRecord a = fresh->next();
                const wl::TraceRecord b = replay.next();
                if (a.pc != b.pc || a.addr != b.addr || a.gap != b.gap ||
                    a.is_write != b.is_write ||
                    a.depends_on_prev != b.depends_on_prev) {
                    std::cerr << "trace_capture: replay diverges from "
                                 "the live generator at record "
                              << i << "\n";
                    return 1;
                }
            }
            std::cout << "verified: trace:file=" << out
                      << " replays bit-identically\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "trace_capture: " << e.what() << "\n";
        return 1;
    }
}
